//! Concrete and symbolic operations, and symbolic sets (§2.2.1).
//!
//! A concrete [`Operation`] is a method name plus runtime argument values,
//! e.g. `add(7)`. A *symbolic operation* `p(a1, …, an)` describes a set of
//! concrete operations: each argument is a program variable, the wildcard
//! `*`, or a constant. A *symbolic set* is a set of symbolic operations and
//! is the parameter of the `lock` method: `lock({get(id), put(id,*)})`.
//!
//! The meaning of a symbolic set under an environment σ mapping variables to
//! runtime values is the set of operations `[SY](σ)` defined in §2.2.1;
//! [`SymbolicSet::instantiate_covers`] implements membership in that set.

use crate::schema::{AdtSchema, MethodIdx};
use crate::value::Value;
use std::fmt;

/// A concrete runtime operation: a method and its argument values.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Operation {
    /// Method index within the ADT schema.
    pub method: MethodIdx,
    /// Concrete argument values.
    pub args: Vec<Value>,
}

impl Operation {
    /// Construct an operation.
    pub fn new(method: MethodIdx, args: Vec<Value>) -> Self {
        Operation { method, args }
    }

    /// Render against a schema, e.g. `add(7)`.
    pub fn display<'a>(&'a self, schema: &'a AdtSchema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Operation, &'a AdtSchema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(", self.1.sig(self.0.method).name)?;
                for (i, a) in self.0.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
        D(self, schema)
    }
}

impl fmt::Debug for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}{:?}", self.method, self.args)
    }
}

/// An argument of a symbolic operation.
///
/// `Var(k)` refers to the `k`-th *key slot* of the lock site: when the
/// compiler emits `lock({get(id), put(id,*)})`, the variable `id` becomes
/// `Var(0)` and the runtime supplies its current value at lock time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum SymArg {
    /// A program variable, identified by its slot in the site's key tuple.
    Var(usize),
    /// The `*` wildcard: all possible values.
    Star,
    /// A compile-time constant value.
    Const(Value),
}

impl fmt::Display for SymArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymArg::Var(k) => write!(f, "v{k}"),
            SymArg::Star => write!(f, "*"),
            SymArg::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A symbolic operation `p(a1, …, an)` over variables / `*` / constants.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SymOp {
    /// Method index within the ADT schema.
    pub method: MethodIdx,
    /// Symbolic arguments; length matches the method arity.
    pub args: Vec<SymArg>,
}

impl SymOp {
    /// Construct a symbolic operation.
    pub fn new(method: MethodIdx, args: Vec<SymArg>) -> Self {
        SymOp { method, args }
    }

    /// A symbolic operation with every argument `*` — matches all
    /// invocations of the method (used by the §3 "lock everything" stage).
    pub fn all_of(schema: &AdtSchema, method: MethodIdx) -> Self {
        SymOp {
            method,
            args: vec![SymArg::Star; schema.sig(method).arity],
        }
    }

    /// Largest variable slot index used, if any.
    pub fn max_var(&self) -> Option<usize> {
        self.args
            .iter()
            .filter_map(|a| match a {
                SymArg::Var(k) => Some(*k),
                _ => None,
            })
            .max()
    }

    /// Whether this operation mentions a variable argument.
    pub fn has_vars(&self) -> bool {
        self.args.iter().any(|a| matches!(a, SymArg::Var(_)))
    }

    /// Does this symbolic operation cover the concrete `op` under the
    /// environment `env` (values for the variable slots)?
    pub fn covers(&self, op: &Operation, env: &[Value]) -> bool {
        if self.method != op.method || self.args.len() != op.args.len() {
            return false;
        }
        self.args.iter().zip(&op.args).all(|(sa, v)| match sa {
            SymArg::Star => true,
            SymArg::Const(c) => c == v,
            SymArg::Var(k) => env.get(*k).is_some_and(|e| e == v),
        })
    }

    /// Render against a schema, e.g. `put(id,*)`.
    pub fn display<'a>(&'a self, schema: &'a AdtSchema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a SymOp, &'a AdtSchema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(", self.1.sig(self.0.method).name)?;
                for (i, a) in self.0.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
        D(self, schema)
    }
}

/// A symbolic set: the static parameter of a `lock` call.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct SymbolicSet {
    ops: Vec<SymOp>,
}

impl SymbolicSet {
    /// The empty symbolic set (locks nothing).
    pub fn empty() -> Self {
        SymbolicSet { ops: Vec::new() }
    }

    /// Build from symbolic operations, deduplicating and dropping
    /// operations subsumed by a more general one (e.g. `get(i)` is
    /// redundant next to `get(*)`) — the represented operation set is
    /// unchanged.
    pub fn new(mut ops: Vec<SymOp>) -> Self {
        // Order is irrelevant to the semantics; canonicalize so that equal
        // sets compare equal regardless of construction order.
        ops.sort_by(|a, b| (a.method, &a.args).cmp(&(b.method, &b.args)));
        ops.dedup();
        let subsumes = |general: &SymOp, specific: &SymOp| {
            general.method == specific.method
                && general
                    .args
                    .iter()
                    .zip(&specific.args)
                    .all(|(g, s)| matches!(g, SymArg::Star) || g == s)
        };
        let keep: Vec<bool> = ops
            .iter()
            .map(|op| !ops.iter().any(|other| other != op && subsumes(other, op)))
            .collect();
        let mut it = keep.iter();
        ops.retain(|_| *it.next().unwrap());
        SymbolicSet { ops }
    }

    /// The "lock everything" symbolic set of §3: every method with all-`*`
    /// arguments, written `lock(+)` in the paper.
    pub fn all_operations(schema: &AdtSchema) -> Self {
        SymbolicSet::new(
            (0..schema.method_count())
                .map(|m| SymOp::all_of(schema, m))
                .collect(),
        )
    }

    /// The symbolic operations in this set.
    pub fn ops(&self) -> &[SymOp] {
        &self.ops
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of symbolic operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Union with another symbolic set.
    pub fn union(&self, other: &SymbolicSet) -> SymbolicSet {
        let mut ops = self.ops.clone();
        ops.extend(other.ops.iter().cloned());
        SymbolicSet::new(ops)
    }

    /// Insert one symbolic operation.
    pub fn insert(&mut self, op: SymOp) {
        if !self.ops.contains(&op) {
            self.ops.push(op);
            self.ops
                .sort_by(|a, b| (a.method, &a.args).cmp(&(b.method, &b.args)));
        }
    }

    /// Number of distinct variable slots referenced (`max index + 1`).
    pub fn var_slots(&self) -> usize {
        self.ops
            .iter()
            .filter_map(SymOp::max_var)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Whether any operation uses a variable argument — the paper's
    /// distinction between *constant* and *variable* symbolic sets (§5.1).
    pub fn is_variable(&self) -> bool {
        self.ops.iter().any(SymOp::has_vars)
    }

    /// Membership of a concrete operation in `[SY](σ)` where σ is given by
    /// the key-slot environment `env` (§2.2.1).
    pub fn instantiate_covers(&self, op: &Operation, env: &[Value]) -> bool {
        self.ops.iter().any(|s| s.covers(op, env))
    }

    /// Render against a schema, e.g. `{get(v0),put(v0,*),remove(v0)}`.
    pub fn display<'a>(&'a self, schema: &'a AdtSchema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a SymbolicSet, &'a AdtSchema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{{")?;
                for (i, o) in self.0.ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", o.display(self.1))?;
                }
                write!(f, "}}")
            }
        }
        D(self, schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::set_schema;

    fn sset() -> std::sync::Arc<AdtSchema> {
        set_schema()
    }

    #[test]
    fn all_operations_set() {
        let s = sset();
        let all = SymbolicSet::all_operations(&s);
        assert_eq!(all.len(), 5);
        assert!(!all.is_variable());
        // covers any op of any method
        let op = Operation::new(s.method("add"), vec![Value(99)]);
        assert!(all.instantiate_covers(&op, &[]));
        let op = Operation::new(s.method("size"), vec![]);
        assert!(all.instantiate_covers(&op, &[]));
    }

    #[test]
    fn example_2_2_semantics() {
        // lock({get(id), put(id,*), remove(id)}) with id = 7 covers exactly
        // get(7), put(7, anything), remove(7) — Example 2.2 of the paper,
        // transposed to the Set schema: {add(id)} with id=7 covers add(7).
        let s = sset();
        let sy = SymbolicSet::new(vec![SymOp::new(s.method("add"), vec![SymArg::Var(0)])]);
        let env = [Value(7)];
        assert!(sy.instantiate_covers(&Operation::new(s.method("add"), vec![Value(7)]), &env));
        assert!(!sy.instantiate_covers(&Operation::new(s.method("add"), vec![Value(8)]), &env));
        assert!(!sy.instantiate_covers(&Operation::new(s.method("remove"), vec![Value(7)]), &env));
    }

    #[test]
    fn star_covers_all_values() {
        let s = sset();
        let sy = SymbolicSet::new(vec![SymOp::new(s.method("add"), vec![SymArg::Star])]);
        for v in [0u64, 5, 1 << 40] {
            assert!(sy.instantiate_covers(&Operation::new(s.method("add"), vec![Value(v)]), &[]));
        }
        assert!(!sy.instantiate_covers(&Operation::new(s.method("remove"), vec![Value(0)]), &[]));
    }

    #[test]
    fn const_args() {
        let s = sset();
        let sy = SymbolicSet::new(vec![SymOp::new(
            s.method("add"),
            vec![SymArg::Const(Value(5))],
        )]);
        assert!(sy.instantiate_covers(&Operation::new(s.method("add"), vec![Value(5)]), &[]));
        assert!(!sy.instantiate_covers(&Operation::new(s.method("add"), vec![Value(6)]), &[]));
    }

    #[test]
    fn dedup_and_canonical_order() {
        let s = sset();
        let a = SymOp::new(s.method("add"), vec![SymArg::Star]);
        let b = SymOp::new(s.method("remove"), vec![SymArg::Star]);
        let s1 = SymbolicSet::new(vec![a.clone(), b.clone(), a.clone()]);
        let s2 = SymbolicSet::new(vec![b, a]);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn var_slots_counts_max() {
        let s = sset();
        let sy = SymbolicSet::new(vec![
            SymOp::new(s.method("add"), vec![SymArg::Var(0)]),
            SymOp::new(s.method("remove"), vec![SymArg::Var(1)]),
        ]);
        assert_eq!(sy.var_slots(), 2);
        assert!(sy.is_variable());
    }

    #[test]
    fn union_merges() {
        let s = sset();
        let a = SymbolicSet::new(vec![SymOp::new(s.method("add"), vec![SymArg::Star])]);
        let b = SymbolicSet::new(vec![SymOp::new(s.method("remove"), vec![SymArg::Star])]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert_eq!(u.union(&a), u);
    }

    #[test]
    fn display_forms() {
        let s = sset();
        let sy = SymbolicSet::new(vec![
            SymOp::new(s.method("add"), vec![SymArg::Var(0)]),
            SymOp::new(s.method("size"), vec![]),
        ]);
        assert_eq!(format!("{}", sy.display(&s)), "{add(v0),size()}");
        let op = Operation::new(s.method("add"), vec![Value(3)]);
        assert_eq!(format!("{}", op.display(&s)), "add(3)");
    }
}
