//! Structured failures of the bounded acquisition API.
//!
//! The paper's protocol is deadlock-free *by construction* when every lock
//! site was emitted by the compiler (§3). The runtime is also a public API,
//! though, and hand-written callers can violate the ordering discipline or
//! panic mid-operation. The bounded entry points ([`crate::txn::Txn::try_lv`],
//! [`crate::txn::Txn::lv_deadline`], [`crate::manager::SemLock::lock_deadline`])
//! surface those failures as a [`LockError`] instead of hanging forever or
//! silently handing a half-mutated instance to the next transaction.

use crate::mode::ModeId;
use crate::watchdog::TxnId;
use std::fmt;
use std::time::Duration;

/// Why a bounded lock acquisition failed.
///
/// `#[non_exhaustive]`: future runtime features (e.g. cancellation or
/// admission-quota failures) may add variants, so downstream matches keep a
/// wildcard arm rather than calcifying the current failure taxonomy into
/// the API.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LockError {
    /// The deadline elapsed before the requested mode could be admitted
    /// (all conflicting holders kept their modes for the whole wait).
    Timeout {
        /// Instance whose mode could not be acquired.
        instance: u64,
        /// The requested mode.
        mode: ModeId,
        /// How long the acquirer waited before giving up.
        waited: Duration,
    },
    /// The instance is poisoned: a transaction panicked *during* an ADT
    /// operation (or aborted after its first mutation), so the structure may
    /// be torn. Acquisitions fail fast until
    /// [`crate::manager::SemLock::clear_poison`] is called.
    Poisoned {
        /// The poisoned instance.
        instance: u64,
    },
    /// The deadlock watchdog found a waits-for cycle through this
    /// acquisition; the youngest waiter of the cycle aborts with this error
    /// so the remaining transactions can make progress.
    WouldDeadlock {
        /// Instance the aborting transaction was waiting on.
        instance: u64,
        /// The requested mode.
        mode: ModeId,
        /// Transactions participating in the detected cycle (sorted).
        cycle: Vec<TxnId>,
    },
    /// A release was refused because the mode's hold counter would have
    /// underflowed — a double unlock, necessarily a caller bug. The
    /// counter is left untouched and the instance is poisoned (its
    /// lock/unlock bookkeeping can no longer be trusted).
    UnlockUnderflow {
        /// The instance whose release was refused (now poisoned).
        instance: u64,
        /// The mode the caller tried to release.
        mode: ModeId,
    },
}

impl LockError {
    /// The ADT instance the failed acquisition targeted.
    pub fn instance(&self) -> u64 {
        match self {
            LockError::Timeout { instance, .. }
            | LockError::Poisoned { instance }
            | LockError::WouldDeadlock { instance, .. }
            | LockError::UnlockUnderflow { instance, .. } => *instance,
        }
    }

    /// Is this a poisoning failure?
    pub fn is_poisoned(&self) -> bool {
        matches!(self, LockError::Poisoned { .. })
    }
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Timeout {
                instance,
                mode,
                waited,
            } => write!(
                f,
                "timed out after {waited:?} acquiring mode m{} on instance {instance}",
                mode.0
            ),
            LockError::Poisoned { instance } => write!(
                f,
                "instance {instance} is poisoned (a transaction panicked mid-operation)"
            ),
            LockError::WouldDeadlock {
                instance,
                mode,
                cycle,
            } => write!(
                f,
                "acquiring mode m{} on instance {instance} would deadlock (waits-for cycle {cycle:?})",
                mode.0
            ),
            LockError::UnlockUnderflow { instance, mode } => write!(
                f,
                "refused double unlock of mode m{} on instance {instance} \
                 (hold counter would underflow; instance poisoned)",
                mode.0
            ),
        }
    }
}

impl std::error::Error for LockError {}

/// Result alias for the bounded acquisition API.
pub type LockResult<T> = Result<T, LockError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let e = LockError::Timeout {
            instance: 7,
            mode: ModeId(3),
            waited: Duration::from_millis(10),
        };
        assert!(e.to_string().contains("instance 7"));
        assert_eq!(e.instance(), 7);
        let p = LockError::Poisoned { instance: 9 };
        assert!(p.is_poisoned());
        assert!(p.to_string().contains("poisoned"));
        let d = LockError::WouldDeadlock {
            instance: 1,
            mode: ModeId(0),
            cycle: vec![4, 5],
        };
        assert!(d.to_string().contains("deadlock"));
    }
}
