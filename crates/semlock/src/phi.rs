//! The abstract-value hash φ : Value → {α₁, …, αₙ} (§5.1).
//!
//! Variable symbolic sets represent a value-dependent set of runtime
//! operations; to obtain a *finite* set of locking modes the compiler maps
//! runtime values to `n` abstract values with a hash function φ. Each
//! abstract value αᵢ represents the disjoint set `{v | φ(v) = αᵢ}` — so two
//! *different* abstract values denote provably-different runtime values,
//! which is what lets the must-commutativity analysis conclude `v ≠ v'`.
//!
//! The evaluation (§6) uses `n = 64`; the ablation benchmarks sweep `n`.

use crate::value::Value;
use std::fmt;

/// An abstract value αᵢ, identified by its index `i ∈ [0, n)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AbsVal(pub u16);

impl fmt::Display for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α{}", self.0)
    }
}

/// The hashing strategy of a [`Phi`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhiKind {
    /// `φ(v) = v mod n`. Deterministic and easy to reason about in tests
    /// (e.g. Fig. 19 pins `φ(5) = α₁` with `n = 2`: `5 mod 2 = 1`).
    Mod,
    /// Fibonacci multiplicative hashing — spreads adjacent keys across
    /// abstract values, the behaviour a production deployment wants.
    Fib,
}

/// A concrete abstract-value hash function with `n` abstract values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Phi {
    n: u16,
    kind: PhiKind,
}

impl Phi {
    /// A modulo hash with `n` abstract values.
    pub fn modulo(n: u16) -> Phi {
        assert!(n >= 1, "φ needs at least one abstract value");
        Phi {
            n,
            kind: PhiKind::Mod,
        }
    }

    /// A Fibonacci multiplicative hash with `n` abstract values.
    pub fn fib(n: u16) -> Phi {
        assert!(n >= 1, "φ needs at least one abstract value");
        Phi {
            n,
            kind: PhiKind::Fib,
        }
    }

    /// The paper's evaluation configuration: 64 abstract values.
    pub fn paper_default() -> Phi {
        Phi::fib(64)
    }

    /// Number of abstract values `n`.
    #[inline]
    pub fn n(&self) -> u16 {
        self.n
    }

    /// Apply φ to a runtime value.
    #[inline]
    pub fn apply(&self, v: Value) -> AbsVal {
        let h = match self.kind {
            PhiKind::Mod => v.0 % self.n as u64,
            PhiKind::Fib => {
                // 2^64 / golden ratio; top bits are well mixed.
                let m = v.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                // Map the mixed word into [0, n) without bias for small n.
                ((m >> 32) * self.n as u64) >> 32
            }
        };
        AbsVal(h as u16)
    }

    /// A copy of this φ with a coarser range of `n'` abstract values,
    /// used by the mode-cap merging of §5.3 (optimization 3).
    pub fn coarsen(&self, n: u16) -> Phi {
        assert!(n >= 1 && n <= self.n);
        Phi { n, kind: self.kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_basics() {
        let phi = Phi::modulo(2);
        assert_eq!(phi.apply(Value(5)), AbsVal(1)); // Fig. 19: φ(5) = α₁
        assert_eq!(phi.apply(Value(4)), AbsVal(0));
        assert_eq!(phi.n(), 2);
    }

    #[test]
    fn fib_in_range_and_deterministic() {
        let phi = Phi::fib(64);
        for v in 0..10_000u64 {
            let a = phi.apply(Value(v));
            assert!(a.0 < 64);
            assert_eq!(a, phi.apply(Value(v)), "determinism");
        }
    }

    #[test]
    fn fib_spreads_adjacent_keys() {
        // Adjacent integers should not all collapse into one abstract value.
        let phi = Phi::fib(64);
        let mut seen = std::collections::HashSet::new();
        for v in 0..64u64 {
            seen.insert(phi.apply(Value(v)));
        }
        assert!(seen.len() > 32, "only {} distinct classes", seen.len());
    }

    #[test]
    fn coarsen_shrinks_range() {
        let phi = Phi::fib(64).coarsen(8);
        assert_eq!(phi.n(), 8);
        for v in 0..1000u64 {
            assert!(phi.apply(Value(v)).0 < 8);
        }
    }

    #[test]
    fn single_class_collapses_everything() {
        let phi = Phi::modulo(1);
        assert_eq!(phi.apply(Value(0)), phi.apply(Value(u64::MAX - 1)));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_classes_rejected() {
        let _ = Phi::modulo(0);
    }

    #[test]
    fn display_abs() {
        assert_eq!(format!("{}", AbsVal(3)), "α3");
    }
}
