//! Runtime checker for the S2PL / OS2PL protocols (§2.3).
//!
//! Tests (and the interpreter, when asked) record every locking and standard
//! operation into a [`ProtocolChecker`]; [`ProtocolChecker::check`] then
//! validates the recorded execution against the protocol rules:
//!
//! 1. a transaction invokes a standard operation only while holding a lock
//!    whose mode covers that operation (S2PL rule 1);
//! 2. a transaction never locks after it has unlocked (S2PL rule 2,
//!    two-phase);
//! 3. a transaction never issues two locking operations on the same ADT
//!    instance (OS2PL corollary, §2.3);
//! 4. there exists an irreflexive transitive order on ADT instances
//!    consistent with every transaction's locking order (OS2PL) — checked
//!    as acyclicity of the union of the per-transaction orders.

use crate::mode::{ModeId, ModeTable};
use crate::symbolic::Operation;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Transaction identifier used by the recorder.
pub type TxnId = u64;

/// One recorded event.
#[derive(Clone, Debug)]
pub enum Event {
    /// `lock` invocation on an instance, acquiring a mode.
    Lock {
        /// Recording transaction.
        txn: TxnId,
        /// ADT instance id.
        instance: u64,
        /// Mode acquired.
        mode: ModeId,
    },
    /// Standard ADT operation invocation.
    Op {
        /// Recording transaction.
        txn: TxnId,
        /// ADT instance id.
        instance: u64,
        /// The concrete operation.
        op: Operation,
    },
    /// `unlockAll` on one instance (the epilogue records one per instance,
    /// early release records it at the release point).
    Unlock {
        /// Recording transaction.
        txn: TxnId,
        /// ADT instance id.
        instance: u64,
    },
}

/// A protocol violation found by [`ProtocolChecker::check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Rule 1: operation without a covering lock.
    OpWithoutLock {
        /// Offending transaction.
        txn: TxnId,
        /// Instance operated on.
        instance: u64,
        /// Human-readable operation description.
        op: String,
    },
    /// Rule 2: lock after unlock.
    LockAfterUnlock {
        /// Offending transaction.
        txn: TxnId,
        /// Instance locked too late.
        instance: u64,
    },
    /// Rule 3: two locking operations on the same instance.
    DoubleLock {
        /// Offending transaction.
        txn: TxnId,
        /// Instance locked twice.
        instance: u64,
    },
    /// Rule 4: the union of per-transaction lock orders has a cycle.
    CyclicLockOrder {
        /// Instances participating in the detected cycle.
        cycle: Vec<u64>,
    },
    /// Unlock of an instance that was never locked.
    UnlockWithoutLock {
        /// Offending transaction.
        txn: TxnId,
        /// Instance unlocked without a lock.
        instance: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OpWithoutLock { txn, instance, op } => {
                write!(
                    f,
                    "txn {txn}: op {op} on instance {instance} without covering lock"
                )
            }
            Violation::LockAfterUnlock { txn, instance } => {
                write!(
                    f,
                    "txn {txn}: locked instance {instance} after unlocking (2PL)"
                )
            }
            Violation::DoubleLock { txn, instance } => {
                write!(
                    f,
                    "txn {txn}: second locking operation on instance {instance}"
                )
            }
            Violation::CyclicLockOrder { cycle } => {
                write!(f, "cyclic instance lock order: {cycle:?}")
            }
            Violation::UnlockWithoutLock { txn, instance } => {
                write!(f, "txn {txn}: unlocked instance {instance} it never locked")
            }
        }
    }
}

/// Records events from concurrently executing transactions and validates
/// them post-hoc.
#[derive(Default)]
pub struct ProtocolChecker {
    events: Mutex<Vec<Event>>,
    tables: Mutex<HashMap<u64, Arc<ModeTable>>>,
}

impl ProtocolChecker {
    /// Create an empty checker.
    pub fn new() -> ProtocolChecker {
        ProtocolChecker::default()
    }

    /// Register the mode table governing an instance (needed to evaluate
    /// mode coverage of operations).
    pub fn register_instance(&self, instance: u64, table: Arc<ModeTable>) {
        self.tables.lock().insert(instance, table);
    }

    /// Record a lock acquisition.
    pub fn on_lock(&self, txn: TxnId, instance: u64, mode: ModeId) {
        self.events.lock().push(Event::Lock {
            txn,
            instance,
            mode,
        });
    }

    /// Record a standard operation.
    pub fn on_op(&self, txn: TxnId, instance: u64, op: Operation) {
        self.events.lock().push(Event::Op { txn, instance, op });
    }

    /// Record an unlock of one instance.
    pub fn on_unlock(&self, txn: TxnId, instance: u64) {
        self.events.lock().push(Event::Unlock { txn, instance });
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.events.lock().len()
    }

    /// Validate the recorded execution; returns every violation found.
    pub fn check(&self) -> Vec<Violation> {
        let events = self.events.lock();
        let tables = self.tables.lock();
        let mut violations = Vec::new();

        // Per-transaction state, replayed in recorded order. The recorder's
        // mutex gives a total order consistent with each thread's program
        // order, which is all the per-transaction rules need.
        struct TxnState {
            held: HashMap<u64, ModeId>,
            ever_locked: HashSet<u64>,
            unlocked_any: bool,
            lock_order: Vec<u64>,
        }
        let mut txns: HashMap<TxnId, TxnState> = HashMap::new();

        for ev in events.iter() {
            match ev {
                Event::Lock {
                    txn,
                    instance,
                    mode,
                } => {
                    let st = txns.entry(*txn).or_insert_with(|| TxnState {
                        held: HashMap::new(),
                        ever_locked: HashSet::new(),
                        unlocked_any: false,
                        lock_order: Vec::new(),
                    });
                    if st.unlocked_any {
                        violations.push(Violation::LockAfterUnlock {
                            txn: *txn,
                            instance: *instance,
                        });
                    }
                    if !st.ever_locked.insert(*instance) {
                        violations.push(Violation::DoubleLock {
                            txn: *txn,
                            instance: *instance,
                        });
                    }
                    st.held.insert(*instance, *mode);
                    st.lock_order.push(*instance);
                }
                Event::Op { txn, instance, op } => {
                    let covered = txns
                        .get(txn)
                        .and_then(|st| st.held.get(instance))
                        .map(|mode| {
                            tables
                                .get(instance)
                                .map(|t| t.mode_covers(*mode, op))
                                .unwrap_or(false)
                        });
                    if covered != Some(true) {
                        let opstr = tables
                            .get(instance)
                            .map(|t| format!("{}", op.display(t.schema())))
                            .unwrap_or_else(|| format!("{op:?}"));
                        violations.push(Violation::OpWithoutLock {
                            txn: *txn,
                            instance: *instance,
                            op: opstr,
                        });
                    }
                }
                Event::Unlock { txn, instance } => {
                    let st = txns.entry(*txn).or_insert_with(|| TxnState {
                        held: HashMap::new(),
                        ever_locked: HashSet::new(),
                        unlocked_any: false,
                        lock_order: Vec::new(),
                    });
                    if st.held.remove(instance).is_none() {
                        violations.push(Violation::UnlockWithoutLock {
                            txn: *txn,
                            instance: *instance,
                        });
                    }
                    st.unlocked_any = true;
                }
            }
        }

        // Rule 4: build the union of per-transaction lock orders and check
        // acyclicity.
        let mut edges: HashMap<u64, HashSet<u64>> = HashMap::new();
        for st in txns.values() {
            for (i, &a) in st.lock_order.iter().enumerate() {
                for &b in &st.lock_order[i + 1..] {
                    if a != b {
                        edges.entry(a).or_default().insert(b);
                    }
                }
            }
        }
        if let Some(cycle) = find_cycle(&edges) {
            violations.push(Violation::CyclicLockOrder { cycle });
        }

        violations
    }

    /// Fallible twin of [`ProtocolChecker::assert_ok`]: `Err` carries every
    /// violation found, so harnesses can report or count them instead of
    /// unwinding.
    pub fn ensure_ok(&self) -> Result<(), ProtocolViolations> {
        let v = self.check();
        if v.is_empty() {
            Ok(())
        } else {
            Err(ProtocolViolations(v))
        }
    }

    /// Convenience: panic with a readable message if any violation exists.
    /// Prefer [`ProtocolChecker::ensure_ok`] anywhere a panic is not the
    /// right failure mode (long-running harnesses, chaos soaks).
    pub fn assert_ok(&self) {
        if let Err(v) = self.ensure_ok() {
            panic!("{v}");
        }
    }
}

/// The non-empty set of violations returned by
/// [`ProtocolChecker::ensure_ok`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolViolations(pub Vec<Violation>);

impl fmt::Display for ProtocolViolations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "protocol violations:")?;
        for v in &self.0 {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ProtocolViolations {}

/// Find a cycle in a directed graph, if any, returning its nodes.
fn find_cycle(edges: &HashMap<u64, HashSet<u64>>) -> Option<Vec<u64>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<u64, Color> = HashMap::new();
    let mut stack: Vec<u64> = Vec::new();

    fn dfs(
        node: u64,
        edges: &HashMap<u64, HashSet<u64>>,
        color: &mut HashMap<u64, Color>,
        stack: &mut Vec<u64>,
    ) -> Option<Vec<u64>> {
        color.insert(node, Color::Gray);
        stack.push(node);
        if let Some(next) = edges.get(&node) {
            for &n in next {
                match color.get(&n).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        let pos = stack.iter().position(|&x| x == n).unwrap();
                        return Some(stack[pos..].to_vec());
                    }
                    Color::White => {
                        if let Some(c) = dfs(n, edges, color, stack) {
                            return Some(c);
                        }
                    }
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
        None
    }

    let nodes: Vec<u64> = edges.keys().copied().collect();
    for n in nodes {
        if color.get(&n).copied().unwrap_or(Color::White) == Color::White {
            if let Some(c) = dfs(n, edges, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::ModeTable;
    use crate::phi::Phi;
    use crate::schema::set_schema;
    use crate::spec::CommutSpec;
    use crate::symbolic::{SymArg, SymOp, SymbolicSet};
    use crate::value::Value;

    fn table() -> (Arc<ModeTable>, crate::mode::LockSiteId) {
        let s = set_schema();
        let spec = CommutSpec::builder(s.clone())
            .always("add", "add")
            .differ("add", 0, "remove", 0)
            .never("add", "size")
            .never("add", "clear")
            .differ("add", 0, "contains", 0)
            .always("remove", "remove")
            .differ("remove", 0, "contains", 0)
            .never("remove", "size")
            .never("remove", "clear")
            .always("contains", "contains")
            .always("contains", "size")
            .never("contains", "clear")
            .always("size", "size")
            .never("size", "clear")
            .always("clear", "clear")
            .build();
        let mut b = ModeTable::builder(s.clone(), spec, Phi::modulo(4));
        let site = b.add_site(SymbolicSet::new(vec![
            SymOp::new(s.method("add"), vec![SymArg::Var(0)]),
            SymOp::new(s.method("remove"), vec![SymArg::Var(0)]),
        ]));
        (b.build(), site)
    }

    fn add_op(t: &ModeTable, v: u64) -> Operation {
        Operation::new(t.schema().method("add"), vec![Value(v)])
    }

    #[test]
    fn clean_execution_passes() {
        let (t, site) = table();
        let c = ProtocolChecker::new();
        c.register_instance(1, t.clone());
        let m = t.select(site, &[Value(5)]);
        c.on_lock(10, 1, m);
        c.on_op(10, 1, add_op(&t, 5));
        c.on_unlock(10, 1);
        assert!(c.check().is_empty());
        c.ensure_ok().unwrap();
    }

    #[test]
    fn op_without_lock_detected() {
        let (t, _) = table();
        let c = ProtocolChecker::new();
        c.register_instance(1, t.clone());
        c.on_op(10, 1, add_op(&t, 5));
        let v = c.check();
        assert!(matches!(v[0], Violation::OpWithoutLock { .. }), "{v:?}");
    }

    #[test]
    fn op_outside_mode_coverage_detected() {
        let (t, site) = table();
        let c = ProtocolChecker::new();
        c.register_instance(1, t.clone());
        // Lock the class of key 5 but operate on a key of another class.
        let m = t.select(site, &[Value(5)]); // φ(5)=α1
        c.on_lock(10, 1, m);
        c.on_op(10, 1, add_op(&t, 6)); // φ(6)=α2 — not covered
        let v = c.check();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::OpWithoutLock { .. }));
    }

    #[test]
    fn lock_after_unlock_detected() {
        let (t, site) = table();
        let c = ProtocolChecker::new();
        c.register_instance(1, t.clone());
        c.register_instance(2, t.clone());
        let m = t.select(site, &[Value(5)]);
        c.on_lock(10, 1, m);
        c.on_unlock(10, 1);
        c.on_lock(10, 2, m);
        let v = c.check();
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::LockAfterUnlock { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn double_lock_detected() {
        let (t, site) = table();
        let c = ProtocolChecker::new();
        c.register_instance(1, t.clone());
        let m = t.select(site, &[Value(5)]);
        c.on_lock(10, 1, m);
        c.on_lock(10, 1, m);
        let v = c.check();
        assert!(
            v.iter().any(|x| matches!(x, Violation::DoubleLock { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn cyclic_order_detected() {
        let (t, site) = table();
        let c = ProtocolChecker::new();
        c.register_instance(1, t.clone());
        c.register_instance(2, t.clone());
        let m = t.select(site, &[Value(5)]);
        // txn 10 locks 1 then 2; txn 11 locks 2 then 1.
        c.on_lock(10, 1, m);
        c.on_lock(10, 2, m);
        c.on_lock(11, 2, m);
        c.on_lock(11, 1, m);
        let v = c.check();
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::CyclicLockOrder { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn consistent_order_passes() {
        let (t, site) = table();
        let c = ProtocolChecker::new();
        for i in 1..=3 {
            c.register_instance(i, t.clone());
        }
        let m = t.select(site, &[Value(5)]);
        for txn in 10..20 {
            for inst in 1..=3 {
                c.on_lock(txn, inst, m);
            }
            for inst in 1..=3 {
                c.on_unlock(txn, inst);
            }
        }
        c.ensure_ok().unwrap();
    }

    #[test]
    fn ensure_ok_reports_violations_without_panicking() {
        let (t, _) = table();
        let c = ProtocolChecker::new();
        c.register_instance(1, t.clone());
        c.on_op(10, 1, add_op(&t, 5));
        let err = c.ensure_ok().unwrap_err();
        assert_eq!(err.0.len(), 1);
        assert!(err.to_string().contains("protocol violations"));
    }

    #[test]
    fn unlock_without_lock_detected() {
        let (t, _) = table();
        let c = ProtocolChecker::new();
        c.register_instance(1, t.clone());
        c.on_unlock(10, 1);
        let v = c.check();
        assert!(matches!(v[0], Violation::UnlockWithoutLock { .. }));
    }
}
