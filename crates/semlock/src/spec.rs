//! Commutativity specifications (§5.2, Fig. 3b).
//!
//! For every pair of ADT operations `o, o'` the specification supplies a
//! condition `I_{o,o'}` over their arguments such that, whenever the
//! condition holds, the two operations commute: applying them to the same
//! ADT state in either order yields the same final state and the same
//! responses (§2.2.2).
//!
//! Conditions are boolean combinations of (in)equalities between argument
//! positions of the two operations and constants — exactly the fragment the
//! paper's examples use (`true`, `false`, `v ≠ v'`). The same condition is
//! evaluated in two ways:
//!
//! * **concretely**, over two [`Operation`]s (used by the protocol checker
//!   and by tests of the specification itself), and
//! * **abstractly**, over two locking-mode operations whose arguments range
//!   over abstract values / wildcards — a three-valued *must* analysis used
//!   to compute the commutativity function `F_c` (Fig. 19). The abstract
//!   evaluation lives in [`crate::commut`].

use crate::schema::{AdtSchema, MethodIdx};
use crate::symbolic::Operation;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A reference to an argument of the left operation, the right operation,
/// or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArgRef {
    /// `i`-th argument of the first (left) operation.
    Left(usize),
    /// `i`-th argument of the second (right) operation.
    Right(usize),
    /// A constant value.
    Const(Value),
}

impl ArgRef {
    /// Swap left and right (used to mirror a condition).
    fn mirrored(self) -> ArgRef {
        match self {
            ArgRef::Left(i) => ArgRef::Right(i),
            ArgRef::Right(i) => ArgRef::Left(i),
            c => c,
        }
    }
}

/// A commutativity condition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cond {
    /// Always commute (e.g. `add(v)` vs `add(v')` on a Set).
    True,
    /// Never commute (e.g. `add(v)` vs `size()` on a Set).
    False,
    /// The two referenced arguments are equal.
    Eq(ArgRef, ArgRef),
    /// The two referenced arguments differ (e.g. `v ≠ v'`).
    Ne(ArgRef, ArgRef),
    /// Conjunction.
    And(Vec<Cond>),
    /// Disjunction.
    Or(Vec<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// `left.arg(i) ≠ right.arg(j)` — the paper's `v ≠ v'` shorthand.
    pub fn args_differ(i: usize, j: usize) -> Cond {
        Cond::Ne(ArgRef::Left(i), ArgRef::Right(j))
    }

    /// `left.arg(i) == right.arg(j)`.
    pub fn args_equal(i: usize, j: usize) -> Cond {
        Cond::Eq(ArgRef::Left(i), ArgRef::Right(j))
    }

    /// The same condition with the roles of the two operations swapped.
    pub fn mirrored(&self) -> Cond {
        match self {
            Cond::True => Cond::True,
            Cond::False => Cond::False,
            Cond::Eq(a, b) => Cond::Eq(a.mirrored(), b.mirrored()),
            Cond::Ne(a, b) => Cond::Ne(a.mirrored(), b.mirrored()),
            Cond::And(cs) => Cond::And(cs.iter().map(Cond::mirrored).collect()),
            Cond::Or(cs) => Cond::Or(cs.iter().map(Cond::mirrored).collect()),
            Cond::Not(c) => Cond::Not(Box::new(c.mirrored())),
        }
    }

    /// Evaluate concretely against two operations' argument vectors.
    pub fn eval(&self, left: &[Value], right: &[Value]) -> bool {
        fn resolve(r: ArgRef, l: &[Value], rr: &[Value]) -> Value {
            match r {
                ArgRef::Left(i) => l[i],
                ArgRef::Right(i) => rr[i],
                ArgRef::Const(c) => c,
            }
        }
        match self {
            Cond::True => true,
            Cond::False => false,
            Cond::Eq(a, b) => resolve(*a, left, right) == resolve(*b, left, right),
            Cond::Ne(a, b) => resolve(*a, left, right) != resolve(*b, left, right),
            Cond::And(cs) => cs.iter().all(|c| c.eval(left, right)),
            Cond::Or(cs) => cs.iter().any(|c| c.eval(left, right)),
            Cond::Not(c) => !c.eval(left, right),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn arg(r: &ArgRef, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match r {
                ArgRef::Left(i) => write!(f, "l{i}"),
                ArgRef::Right(i) => write!(f, "r{i}"),
                ArgRef::Const(c) => write!(f, "{c}"),
            }
        }
        match self {
            Cond::True => write!(f, "true"),
            Cond::False => write!(f, "false"),
            Cond::Eq(a, b) => {
                arg(a, f)?;
                write!(f, "==")?;
                arg(b, f)
            }
            Cond::Ne(a, b) => {
                arg(a, f)?;
                write!(f, "!=")?;
                arg(b, f)
            }
            Cond::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Cond::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Cond::Not(c) => write!(f, "!({c})"),
        }
    }
}

/// A commutativity specification for one ADT class: a condition for every
/// (unordered) pair of methods.
#[derive(Debug)]
pub struct CommutSpec {
    schema: Arc<AdtSchema>,
    /// Full (mirrored) matrix indexed `[m1][m2]`: condition under which an
    /// `m1` operation (left) commutes with an `m2` operation (right).
    table: Vec<Vec<Cond>>,
}

impl CommutSpec {
    /// Start building a specification. Unspecified pairs default to the
    /// sound-but-pessimistic `False` ("never commute").
    pub fn builder(schema: Arc<AdtSchema>) -> CommutSpecBuilder {
        let n = schema.method_count();
        CommutSpecBuilder {
            schema,
            table: vec![vec![None; n]; n],
        }
    }

    /// The ADT schema this specification describes.
    pub fn schema(&self) -> &Arc<AdtSchema> {
        &self.schema
    }

    /// The condition under which an `m1` operation (left side) commutes
    /// with an `m2` operation (right side).
    pub fn cond(&self, m1: MethodIdx, m2: MethodIdx) -> &Cond {
        &self.table[m1][m2]
    }

    /// Do two concrete operations commute according to this specification?
    ///
    /// Note the condition is *sufficient*: `false` means "not known to
    /// commute", which the locking machinery must treat as a conflict.
    pub fn commutes(&self, a: &Operation, b: &Operation) -> bool {
        self.cond(a.method, b.method).eval(&a.args, &b.args)
    }
}

/// Builder for [`CommutSpec`].
pub struct CommutSpecBuilder {
    schema: Arc<AdtSchema>,
    table: Vec<Vec<Option<Cond>>>,
}

impl CommutSpecBuilder {
    /// Specify the condition under which operations of `m1` and `m2`
    /// commute. The mirrored entry is filled in automatically, so each
    /// unordered pair needs only one call (as in the upper-triangular
    /// Fig. 3b).
    pub fn pair(mut self, m1: &str, m2: &str, cond: Cond) -> Self {
        let i = self.schema.method(m1);
        let j = self.schema.method(m2);
        assert!(
            self.table[i][j].is_none(),
            "pair ({m1},{m2}) specified twice"
        );
        self.table[i][j] = Some(cond.clone());
        if i != j {
            assert!(
                self.table[j][i].is_none(),
                "pair ({m2},{m1}) specified twice"
            );
            self.table[j][i] = Some(cond.mirrored());
        }
        self
    }

    /// Convenience: `m1` and `m2` always commute.
    pub fn always(self, m1: &str, m2: &str) -> Self {
        self.pair(m1, m2, Cond::True)
    }

    /// Convenience: `m1` and `m2` never commute.
    pub fn never(self, m1: &str, m2: &str) -> Self {
        self.pair(m1, m2, Cond::False)
    }

    /// Convenience: `m1(…, vi, …)` and `m2(…, vj, …)` commute when the two
    /// arguments differ (the `v ≠ v'` pattern of Fig. 3b).
    pub fn differ(self, m1: &str, i: usize, m2: &str, j: usize) -> Self {
        self.pair(m1, m2, Cond::args_differ(i, j))
    }

    /// Finish, defaulting unspecified pairs to `False`.
    pub fn build(self) -> Arc<CommutSpec> {
        let table = self
            .table
            .into_iter()
            .map(|row| row.into_iter().map(|c| c.unwrap_or(Cond::False)).collect())
            .collect();
        Arc::new(CommutSpec {
            schema: self.schema,
            table,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::set_schema;
    use crate::symbolic::Operation;

    /// The exact specification of Fig. 3(b).
    fn fig3b() -> Arc<CommutSpec> {
        let s = set_schema();
        CommutSpec::builder(s)
            .always("add", "add")
            .differ("add", 0, "remove", 0)
            .differ("add", 0, "contains", 0)
            .never("add", "size")
            .never("add", "clear")
            .always("remove", "remove")
            .differ("remove", 0, "contains", 0)
            .never("remove", "size")
            .never("remove", "clear")
            .always("contains", "contains")
            .always("contains", "size")
            .never("contains", "clear")
            .always("size", "size")
            .never("size", "clear")
            .always("clear", "clear")
            .build()
    }

    fn op(spec: &CommutSpec, name: &str, args: &[u64]) -> Operation {
        Operation::new(
            spec.schema().method(name),
            args.iter().map(|&v| Value(v)).collect(),
        )
    }

    #[test]
    fn example_2_3() {
        // add(7) and remove(7) do not commute; add(7) and remove(10) do.
        let spec = fig3b();
        assert!(!spec.commutes(&op(&spec, "add", &[7]), &op(&spec, "remove", &[7])));
        assert!(spec.commutes(&op(&spec, "add", &[7]), &op(&spec, "remove", &[10])));
    }

    #[test]
    fn fig3b_full_concrete_table() {
        let spec = fig3b();
        // add(v) vs add(v'): always
        assert!(spec.commutes(&op(&spec, "add", &[1]), &op(&spec, "add", &[1])));
        assert!(spec.commutes(&op(&spec, "add", &[1]), &op(&spec, "add", &[2])));
        // add vs contains: v != v'
        assert!(!spec.commutes(&op(&spec, "add", &[3]), &op(&spec, "contains", &[3])));
        assert!(spec.commutes(&op(&spec, "add", &[3]), &op(&spec, "contains", &[4])));
        // add vs size/clear: never
        assert!(!spec.commutes(&op(&spec, "add", &[3]), &op(&spec, "size", &[])));
        assert!(!spec.commutes(&op(&spec, "add", &[3]), &op(&spec, "clear", &[])));
        // remove vs remove: always
        assert!(spec.commutes(&op(&spec, "remove", &[9]), &op(&spec, "remove", &[9])));
        // contains vs contains / size: always
        assert!(spec.commutes(&op(&spec, "contains", &[1]), &op(&spec, "contains", &[1])));
        assert!(spec.commutes(&op(&spec, "contains", &[1]), &op(&spec, "size", &[])));
        // size vs size: always; clear vs clear: always
        assert!(spec.commutes(&op(&spec, "size", &[]), &op(&spec, "size", &[])));
        assert!(spec.commutes(&op(&spec, "clear", &[]), &op(&spec, "clear", &[])));
        // size vs clear: never
        assert!(!spec.commutes(&op(&spec, "size", &[]), &op(&spec, "clear", &[])));
    }

    #[test]
    fn spec_is_symmetric() {
        let spec = fig3b();
        let names = ["add", "remove", "contains", "size", "clear"];
        for a in names {
            for b in names {
                let (ia, ib) = (spec.schema().method(a), spec.schema().method(b));
                let arity = |m: usize| spec.schema().sig(m).arity;
                for va in 0..3u64 {
                    for vb in 0..3u64 {
                        let oa = Operation::new(ia, (0..arity(ia)).map(|_| Value(va)).collect());
                        let ob = Operation::new(ib, (0..arity(ib)).map(|_| Value(vb)).collect());
                        assert_eq!(
                            spec.commutes(&oa, &ob),
                            spec.commutes(&ob, &oa),
                            "asymmetry for {a}({va}) vs {b}({vb})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn default_is_never() {
        let s = set_schema();
        let spec = CommutSpec::builder(s).always("add", "add").build();
        assert!(!spec.commutes(&op(&spec, "add", &[1]), &op(&spec, "remove", &[2])));
        assert!(spec.commutes(&op(&spec, "add", &[1]), &op(&spec, "add", &[2])));
    }

    #[test]
    #[should_panic(expected = "specified twice")]
    fn duplicate_pair_panics() {
        let s = set_schema();
        let _ = CommutSpec::builder(s)
            .always("add", "remove")
            .never("remove", "add");
    }

    #[test]
    fn mirrored_condition_swaps_sides() {
        // Condition comparing left arg 0 with a constant should mirror to
        // the right side.
        let c = Cond::Ne(ArgRef::Left(0), ArgRef::Const(Value(5)));
        let m = c.mirrored();
        assert_eq!(m, Cond::Ne(ArgRef::Right(0), ArgRef::Const(Value(5))));
        // eval: left=[5] fails Ne, mirrored with right=[5] fails too.
        assert!(!c.eval(&[Value(5)], &[]));
        assert!(!m.eval(&[], &[Value(5)]));
        assert!(m.eval(&[], &[Value(6)]));
    }

    #[test]
    fn cond_display() {
        let c = Cond::And(vec![
            Cond::args_differ(0, 0),
            Cond::Or(vec![
                Cond::True,
                Cond::Eq(ArgRef::Left(1), ArgRef::Const(Value(3))),
            ]),
        ]);
        assert_eq!(format!("{c}"), "(l0!=r0 && (true || l1==3))");
    }

    #[test]
    fn boolean_connectives() {
        let t = Cond::True;
        let f = Cond::False;
        assert!(Cond::And(vec![t.clone(), t.clone()]).eval(&[], &[]));
        assert!(!Cond::And(vec![t.clone(), f.clone()]).eval(&[], &[]));
        assert!(Cond::Or(vec![f.clone(), t.clone()]).eval(&[], &[]));
        assert!(!Cond::Or(vec![f.clone(), f.clone()]).eval(&[], &[]));
        assert!(Cond::Not(Box::new(f)).eval(&[], &[]));
        assert!(!Cond::Not(Box::new(t)).eval(&[], &[]));
    }
}
