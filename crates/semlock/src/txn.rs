//! Transaction contexts: `LOCAL_SET`, prologue/epilogue, and the ordered
//! acquisition helpers of §3 (`LV`, `LV2`, dynamic same-class sorting).
//!
//! A [`Txn`] is the runtime state of one executing atomic section. It tracks
//! the ADT instances the transaction has locked (the paper's thread-local
//! `LOCAL_SET`, Fig. 5), skips re-locking, releases everything in the
//! epilogue (or early, for the Appendix-A early-release optimization), and —
//! in debug builds — enforces the OS2PL single-lock-per-instance rule.

use crate::acquire::{AcquireSpec, WaitBudget};
use crate::error::LockError;
use crate::manager::SemLock;
use crate::mode::ModeId;
use crate::telemetry;
use crate::watchdog::TxnId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide transaction id counter. Ids only need to be unique and
/// monotone (the deadlock watchdog aborts the *youngest* cycle member, i.e.
/// the largest id, so the oldest waiter always survives and the system makes
/// progress).
static NEXT_TXN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh transaction id from the process-wide counter.
///
/// [`Txn::new`] draws from the same counter; external executors that manage
/// their own transaction state (e.g. the IR interpreter) must use this too,
/// so ids registered with the [`crate::watchdog`] never collide.
pub fn next_txn_id() -> TxnId {
    NEXT_TXN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The runtime context of one transaction (execution of an atomic section).
///
/// Dropping a `Txn` releases every lock it still holds, so a panicking
/// atomic section cannot leak locks.
pub struct Txn<'a> {
    /// `LOCAL_SET`: instances currently locked, with the mode held and the
    /// telemetry site id stamped at acquisition ([`telemetry::SITE_NONE`]
    /// when telemetry was off or no site was pending). Transactions touch
    /// a handful of ADTs, so a linear-scan vector beats any hash structure
    /// here.
    held: Vec<(&'a SemLock, ModeId, u32)>,
    /// Unique monotone transaction id (used by the deadlock watchdog).
    id: TxnId,
}

impl<'a> Txn<'a> {
    /// Prologue: begin a transaction with an empty `LOCAL_SET`.
    pub fn new() -> Txn<'a> {
        Txn {
            held: Vec::new(),
            id: next_txn_id(),
        }
    }

    /// This transaction's unique id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The unified acquisition entry point: lock `adt` as described by
    /// `spec`, unless this transaction already holds a lock on that
    /// instance (the `LV` skip rule — the compiler guarantees the first
    /// lock site reached for an instance requests a mode covering every
    /// operation the section may still invoke on it, so skipping
    /// subsequent sites is sound, whatever the spec's wait budget).
    ///
    /// Every legacy entry point is a thin wrapper over this:
    ///
    /// | wrapper | equivalent spec |
    /// |---|---|
    /// | [`Txn::lv`] | `AcquireSpec::new(mode)` (+ panic on poison) |
    /// | [`Txn::try_lv`] | `AcquireSpec::new(mode).no_wait()` |
    /// | [`Txn::lv_deadline`] | `AcquireSpec::new(mode).deadline(d)` |
    /// | [`Txn::lv_timeout`] | `AcquireSpec::new(mode).timeout(t)` |
    ///
    /// On failure the transaction still holds everything it held before
    /// the call; the caller decides whether to retry, back off, or drop
    /// the `Txn` (which releases the rest). Bounded specs register with
    /// the deadlock watchdog while parked (unless
    /// [`AcquireSpec::no_watchdog`]), carrying this transaction's id and
    /// current holds into the waits-for graph.
    pub fn acquire(&mut self, adt: &'a SemLock, spec: &AcquireSpec) -> Result<(), LockError> {
        if self.holds(adt) {
            return Ok(());
        }
        let site = self.tele_enter();
        match spec.wait {
            WaitBudget::Forever => adt.lock_checked(spec.mode)?,
            WaitBudget::DontWait => adt.try_lock_checked(spec.mode)?,
            WaitBudget::Until(_) => {
                // Uncontended fast path: admissible right now means no
                // snapshot allocation, no deadline bookkeeping, no
                // watchdog involvement.
                if adt.try_lock_checked(spec.mode).is_err() {
                    // The fast path consumed the pending site; re-stamp it
                    // so the bounded acquisition's events carry the same
                    // attribution.
                    if site != telemetry::SITE_NONE {
                        telemetry::set_site(site);
                    }
                    // Snapshot of current holds for the watchdog's
                    // waits-for edges.
                    let held: Vec<(u64, ModeId)> =
                        self.held.iter().map(|&(l, m, _)| (l.unique(), m)).collect();
                    adt.acquire_as(spec, self.id, &held)?;
                }
            }
        }
        self.held.push((adt, spec.mode, site));
        Ok(())
    }

    /// The `LV(x)` macro of Fig. 5: lock `adt` in `mode` unless this
    /// transaction already holds a lock on that instance. Equivalent to
    /// [`Txn::acquire`] with `AcquireSpec::new(mode)`, with the one
    /// possible failure (a poisoned instance) promoted to a panic — the
    /// compiled-output API has no error channel, and proceeding onto
    /// possibly-torn state would be worse.
    pub fn lv(&mut self, adt: &'a SemLock, mode: ModeId) {
        if let Err(e) = self.acquire(adt, &AcquireSpec::new(mode)) {
            panic!("lv: {e}");
        }
    }

    /// Telemetry prologue for an acquisition: stamp this transaction's id
    /// into the thread context and return the pending site id (which the
    /// runtime entry point will consume). Free when telemetry is off.
    #[inline]
    fn tele_enter(&self) -> u32 {
        if telemetry::enabled() {
            telemetry::set_txn(self.id);
            telemetry::context().1
        } else {
            telemetry::SITE_NONE
        }
    }

    /// Telemetry prologue for a release: re-stamp the context with this
    /// transaction's id and the site recorded at acquisition, so the
    /// `Release` event pairs with its `Admit`. Free when telemetry is off.
    #[inline]
    fn tele_release(&self, site: u32) {
        if telemetry::enabled() {
            telemetry::set_context(self.id, site);
        }
    }

    /// Non-blocking `LV`: acquire `mode` on `adt` only if it is admissible
    /// right now. Already-held instances succeed immediately (the `LV`
    /// skip rule). Fails with [`LockError::Timeout`] (zero wait) on
    /// conflict or [`LockError::Poisoned`] on a poisoned instance.
    /// Equivalent to [`Txn::acquire`] with `AcquireSpec::new(mode).no_wait()`.
    pub fn try_lv(&mut self, adt: &'a SemLock, mode: ModeId) -> Result<(), LockError> {
        self.acquire(adt, &AcquireSpec::new(mode).no_wait())
    }

    /// Bounded `LV`: wait for admission until `deadline`, with the deadlock
    /// watchdog armed. Equivalent to [`Txn::acquire`] with
    /// `AcquireSpec::new(mode).deadline(deadline)`; see there for the
    /// failure contract.
    pub fn lv_deadline(
        &mut self,
        adt: &'a SemLock,
        mode: ModeId,
        deadline: Instant,
    ) -> Result<(), LockError> {
        self.acquire(adt, &AcquireSpec::new(mode).deadline(deadline))
    }

    /// [`Txn::lv_deadline`] with a relative timeout. Equivalent to
    /// [`Txn::acquire`] with `AcquireSpec::new(mode).timeout(timeout)`.
    pub fn lv_timeout(
        &mut self,
        adt: &'a SemLock,
        mode: ModeId,
        timeout: Duration,
    ) -> Result<(), LockError> {
        self.acquire(adt, &AcquireSpec::new(mode).timeout(timeout))
    }

    /// The `LV2(x, y)` macro of Fig. 12: lock two instances of the same
    /// equivalence class in the dynamic order given by their unique
    /// identifiers, so concurrent transactions agree on the order.
    pub fn lv2(&mut self, a: (&'a SemLock, ModeId), b: (&'a SemLock, ModeId)) {
        if a.0.unique() <= b.0.unique() {
            self.lv(a.0, a.1);
            self.lv(b.0, b.1);
        } else {
            self.lv(b.0, b.1);
            self.lv(a.0, a.1);
        }
    }

    /// General case of Fig. 12: lock any number of same-class instances in
    /// ascending unique-id order.
    pub fn lv_sorted(&mut self, mut entries: Vec<(&'a SemLock, ModeId)>) {
        entries.sort_by_key(|(l, _)| l.unique());
        for (l, m) in entries {
            self.lv(l, m);
        }
    }

    /// Batched group acquisition: lock every entry, attempting a
    /// non-blocking **fast pass** first — one admission CAS per member,
    /// probed in canonical ascending unique-id order (Fig. 12). If every
    /// probe admits, the whole group is held after one pass over the
    /// partition words with no parking and no watchdog traffic.
    ///
    /// If *any* probe refuses (conflict or poison), the fast pass is
    /// rolled back in reverse order — releases go through the full
    /// unlock path so waiter handoff runs — and the acquisition
    /// **escalates to the sequential protocol** ([`Txn::acquire`] per
    /// entry, in the caller's original order). The escalation path is
    /// byte-identical to the unoptimized acquisition sequence, so error
    /// identity, partial-hold behavior on failure, and deadlock-freedom
    /// (each blocking wait holds only what the sequential protocol would
    /// hold) are exactly those of issuing the entries one by one.
    ///
    /// Entries on instances this transaction already holds are skipped
    /// (the `LV` rule), as are repeated instances within the group
    /// (first spec wins) — OS2PL locks each instance at most once.
    pub fn acquire_group(
        &mut self,
        entries: &[(&'a SemLock, AcquireSpec)],
    ) -> Result<(), LockError> {
        let mut todo: Vec<&(&'a SemLock, AcquireSpec)> = Vec::with_capacity(entries.len());
        for e in entries {
            if self.holds(e.0) || todo.iter().any(|p| p.0.unique() == e.0.unique()) {
                continue;
            }
            todo.push(e);
        }
        match todo.as_slice() {
            [] => return Ok(()),
            [e] => return self.acquire(e.0, &e.1),
            _ => {}
        }
        let mut fast = todo.clone();
        fast.sort_by_key(|e| e.0.unique());
        let mut admitted: Vec<(&'a SemLock, ModeId, u32)> = Vec::with_capacity(fast.len());
        let mut refused = false;
        for e in &fast {
            let site = self.tele_enter();
            if e.0.try_lock_checked(e.1.mode).is_ok() {
                admitted.push((e.0, e.1.mode, site));
            } else {
                refused = true;
                break;
            }
        }
        if !refused {
            self.held.extend(admitted);
            return Ok(());
        }
        for (l, m, site) in admitted.into_iter().rev() {
            self.tele_release(site);
            l.unlock(m);
        }
        for e in todo {
            self.acquire(e.0, &e.1)?;
        }
        Ok(())
    }

    /// Does this transaction currently hold a lock on `adt`?
    pub fn holds(&self, adt: &SemLock) -> bool {
        self.held.iter().any(|(l, _, _)| l.unique() == adt.unique())
    }

    /// The mode held on `adt`, if any.
    pub fn held_mode(&self, adt: &SemLock) -> Option<ModeId> {
        self.held
            .iter()
            .find(|(l, _, _)| l.unique() == adt.unique())
            .map(|&(_, m, _)| m)
    }

    /// Number of instances currently locked.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Early lock release (Appendix A): the `x.unlockAll()` moved before
    /// the end of the section. No-op if the instance is not held.
    pub fn release(&mut self, adt: &SemLock) {
        if let Some(pos) = self
            .held
            .iter()
            .position(|(l, _, _)| l.unique() == adt.unique())
        {
            let (l, m, site) = self.held.swap_remove(pos);
            self.tele_release(site);
            l.unlock(m);
        }
    }

    /// Epilogue: `foreach(t : LOCAL_SET) t.unlockAll()`.
    pub fn unlock_all(&mut self) {
        let id = self.id;
        for (l, m, site) in self.held.drain(..) {
            if telemetry::enabled() {
                telemetry::set_context(id, site);
            }
            l.unlock(m);
        }
    }

    /// Mark that an ADT operation on `adt` is in flight. If the returned
    /// guard is dropped by an unwind (the operation panicked), `adt` is
    /// poisoned: the structure may be torn, so later acquisitions fail fast
    /// with [`LockError::Poisoned`] until
    /// [`SemLock::clear_poison`](crate::manager::SemLock::clear_poison).
    ///
    /// Mirrors `std::sync::Mutex` poisoning, scoped to the operation rather
    /// than the whole critical section: panics *between* operations (before
    /// the first mutation) abort cleanly without poisoning.
    pub fn in_op(&self, adt: &'a SemLock) -> OpGuard<'a> {
        debug_assert!(
            self.holds(adt),
            "in_op on an instance the transaction has not locked"
        );
        OpGuard { adt }
    }

    /// Run one ADT operation under an [`OpGuard`]: if `f` panics, `adt` is
    /// poisoned before the unwind continues.
    pub fn with_op<R>(&self, adt: &'a SemLock, f: impl FnOnce() -> R) -> R {
        let _guard = self.in_op(adt);
        f()
    }
}

/// Marker that an ADT operation is executing (see [`Txn::in_op`]). Poisons
/// the instance if dropped during a panic unwind.
pub struct OpGuard<'a> {
    adt: &'a SemLock,
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.adt.poison();
        }
    }
}

impl Default for Txn<'_> {
    fn default() -> Self {
        Txn::new()
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        self.unlock_all();
    }
}

/// Run a closure as a transaction: prologue, body, epilogue.
///
/// ```
/// # use semlock::{txn::atomic_section};
/// let out = atomic_section(|txn| {
///     // lock ADTs via txn.lv(...), invoke operations, ...
///     let _ = txn.held_count();
///     42
/// });
/// assert_eq!(out, 42);
/// ```
pub fn atomic_section<'a, R>(body: impl FnOnce(&mut Txn<'a>) -> R) -> R {
    let mut txn = Txn::new();
    let r = body(&mut txn);
    txn.unlock_all();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::{LockSiteId, ModeTable};
    use crate::phi::Phi;
    use crate::schema::set_schema;
    use crate::spec::CommutSpec;
    use crate::symbolic::{SymArg, SymOp, SymbolicSet};
    use crate::value::Value;
    use std::sync::Arc;

    fn table() -> (Arc<ModeTable>, LockSiteId) {
        let s = set_schema();
        let spec = CommutSpec::builder(s.clone())
            .always("add", "add")
            .differ("add", 0, "remove", 0)
            .never("add", "size")
            .always("remove", "remove")
            .never("remove", "size")
            .always("size", "size")
            .never("add", "clear")
            .never("remove", "clear")
            .never("size", "clear")
            .always("clear", "clear")
            .differ("add", 0, "contains", 0)
            .differ("remove", 0, "contains", 0)
            .always("contains", "contains")
            .always("contains", "size")
            .never("contains", "clear")
            .build();
        let mut b = ModeTable::builder(s.clone(), spec, Phi::modulo(4));
        let site = b.add_site(SymbolicSet::new(vec![
            SymOp::new(s.method("add"), vec![SymArg::Var(0)]),
            SymOp::new(s.method("remove"), vec![SymArg::Var(0)]),
        ]));
        (b.build(), site)
    }

    #[test]
    fn lv_skips_already_locked_instance() {
        let (t, site) = table();
        let lock = SemLock::new(t.clone());
        let m = t.select(site, &[Value(1)]);
        let mut txn = Txn::new();
        txn.lv(&lock, m);
        txn.lv(&lock, m); // second LV is a no-op
        assert_eq!(txn.held_count(), 1);
        assert_eq!(lock.hold_count(m), 1);
        txn.unlock_all();
        assert_eq!(lock.hold_count(m), 0);
    }

    #[test]
    fn drop_releases_locks() {
        let (t, site) = table();
        let lock = SemLock::new(t.clone());
        let m = t.select(site, &[Value(1)]);
        {
            let mut txn = Txn::new();
            txn.lv(&lock, m);
            assert_eq!(lock.hold_count(m), 1);
            // txn dropped here without explicit unlock_all
        }
        assert_eq!(lock.hold_count(m), 0);
    }

    #[test]
    fn lv2_orders_by_unique_id() {
        let (t, site) = table();
        let a = SemLock::new(t.clone());
        let b = SemLock::new(t.clone());
        let m = t.select(site, &[Value(1)]);
        // Both argument orders must succeed and leave both locked.
        let mut txn = Txn::new();
        txn.lv2((&b, m), (&a, m));
        assert!(txn.holds(&a) && txn.holds(&b));
        txn.unlock_all();
        let mut txn = Txn::new();
        txn.lv2((&a, m), (&b, m));
        assert!(txn.holds(&a) && txn.holds(&b));
    }

    #[test]
    fn lv_sorted_many() {
        let (t, site) = table();
        let locks: Vec<_> = (0..5).map(|_| SemLock::new(t.clone())).collect();
        let m = t.select(site, &[Value(2)]);
        let mut txn = Txn::new();
        // Deliberately shuffled order of same-class instances.
        txn.lv_sorted(vec![
            (&locks[3], m),
            (&locks[0], m),
            (&locks[4], m),
            (&locks[1], m),
            (&locks[2], m),
        ]);
        assert_eq!(txn.held_count(), 5);
    }

    #[test]
    fn early_release() {
        let (t, site) = table();
        let a = SemLock::new(t.clone());
        let b = SemLock::new(t.clone());
        let m = t.select(site, &[Value(3)]);
        let mut txn = Txn::new();
        txn.lv(&a, m);
        txn.lv(&b, m);
        txn.release(&a);
        assert_eq!(a.hold_count(m), 0);
        assert_eq!(b.hold_count(m), 1);
        assert!(!txn.holds(&a));
        txn.unlock_all();
        assert_eq!(b.hold_count(m), 0);
    }

    #[test]
    fn held_mode_lookup() {
        let (t, site) = table();
        let a = SemLock::new(t.clone());
        let m = t.select(site, &[Value(1)]);
        let mut txn = Txn::new();
        assert_eq!(txn.held_mode(&a), None);
        txn.lv(&a, m);
        assert_eq!(txn.held_mode(&a), Some(m));
    }

    #[test]
    fn atomic_section_helper_runs_epilogue() {
        let (t, site) = table();
        let lock = SemLock::new(t.clone());
        let m = t.select(site, &[Value(1)]);
        atomic_section(|txn| {
            txn.lv(&lock, m);
        });
        assert_eq!(lock.hold_count(m), 0);
    }

    #[test]
    fn txn_ids_are_unique_and_monotone() {
        let a = Txn::new();
        let b = Txn::new();
        assert!(b.id() > a.id());
    }

    #[test]
    fn try_lv_succeeds_then_skips_then_conflicts() {
        let (t, site) = table();
        let lock = SemLock::new(t.clone());
        let m = t.select(site, &[Value(3)]);
        let mut txn = Txn::new();
        txn.try_lv(&lock, m).unwrap();
        // Second call on a held instance is the LV skip rule, not a retry.
        txn.try_lv(&lock, m).unwrap();
        assert_eq!(txn.held_count(), 1);
        // A second transaction conflicts (self-conflicting mode) and must
        // fail immediately with a zero-wait timeout.
        let mut other = Txn::new();
        let err = other.try_lv(&lock, m).unwrap_err();
        assert!(matches!(err, LockError::Timeout { waited, .. } if waited == Duration::ZERO));
        assert_eq!(other.held_count(), 0);
    }

    #[test]
    fn lv_deadline_times_out_and_preserves_prior_holds() {
        let (t, site) = table();
        let a = SemLock::new(t.clone());
        let b = SemLock::new(t.clone());
        let m = t.select(site, &[Value(3)]);
        let mut holder = Txn::new();
        holder.lv(&b, m);
        let mut txn = Txn::new();
        txn.lv(&a, m);
        let err = txn
            .lv_timeout(&b, m, Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }), "{err}");
        // The failed acquisition must not disturb what the txn already held.
        assert!(txn.holds(&a) && !txn.holds(&b));
        holder.unlock_all();
        txn.lv_timeout(&b, m, Duration::from_secs(5)).unwrap();
        assert!(txn.holds(&b));
    }

    #[test]
    fn op_guard_poisons_on_panic_only() {
        let (t, site) = table();
        let lock = SemLock::new(t.clone());
        let m = t.select(site, &[Value(1)]);
        // Normal completion: no poisoning.
        let mut txn = Txn::new();
        txn.lv(&lock, m);
        txn.with_op(&lock, || 1 + 1);
        assert!(!lock.is_poisoned());
        txn.unlock_all();
        // Panic inside the operation: instance poisoned, locks released by
        // the Txn drop, next acquisition rejected until clear_poison.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut txn = Txn::new();
            txn.lv(&lock, m);
            txn.with_op(&lock, || panic!("boom mid-operation"));
        }));
        assert!(r.is_err());
        assert!(lock.is_poisoned());
        assert_eq!(lock.total_holds(), 0, "panicking txn must not leak modes");
        let mut txn = Txn::new();
        assert!(txn.try_lv(&lock, m).unwrap_err().is_poisoned());
        lock.clear_poison();
        txn.try_lv(&lock, m).unwrap();
    }

    #[test]
    fn panic_between_operations_does_not_poison() {
        let (t, site) = table();
        let lock = SemLock::new(t.clone());
        let m = t.select(site, &[Value(1)]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut txn = Txn::new();
            txn.lv(&lock, m);
            // No op in flight: this models an abort before the first
            // mutation, which the paper's protocol survives rollback-free.
            panic!("boom between operations");
        }));
        assert!(r.is_err());
        assert!(!lock.is_poisoned());
        assert_eq!(lock.total_holds(), 0);
    }

    #[test]
    fn acquire_group_fast_pass_locks_everything() {
        let (t, site) = table();
        let locks: Vec<_> = (0..4).map(|_| SemLock::new(t.clone())).collect();
        let m = t.select(site, &[Value(2)]);
        let mut txn = Txn::new();
        txn.acquire_group(&[
            (&locks[2], AcquireSpec::new(m)),
            (&locks[0], AcquireSpec::new(m)),
            (&locks[3], AcquireSpec::new(m)),
            (&locks[1], AcquireSpec::new(m)),
        ])
        .unwrap();
        assert_eq!(txn.held_count(), 4);
        for l in &locks {
            assert!(txn.holds(l));
            assert_eq!(l.hold_count(m), 1);
        }
        txn.unlock_all();
        for l in &locks {
            assert_eq!(l.hold_count(m), 0);
        }
    }

    #[test]
    fn acquire_group_dedups_and_skips_held() {
        let (t, site) = table();
        let a = SemLock::new(t.clone());
        let b = SemLock::new(t.clone());
        let m = t.select(site, &[Value(1)]);
        let mut txn = Txn::new();
        txn.lv(&a, m);
        txn.acquire_group(&[
            (&a, AcquireSpec::new(m)), // already held: LV skip
            (&b, AcquireSpec::new(m)),
            (&b, AcquireSpec::new(m)), // duplicate instance: first wins
        ])
        .unwrap();
        assert_eq!(txn.held_count(), 2);
        assert_eq!(a.hold_count(m), 1, "group must not re-lock a held instance");
        assert_eq!(b.hold_count(m), 1, "duplicates must collapse to one hold");
    }

    #[test]
    fn acquire_group_escalation_matches_sequential_protocol() {
        let (t, site) = table();
        let a = SemLock::new(t.clone());
        let b = SemLock::new(t.clone());
        let m = t.select(site, &[Value(3)]); // self-conflicting mode
        let mut holder = Txn::new();
        holder.lv(&b, m);
        // Fast pass refuses at `b`; the DontWait escalation then acquires
        // `a`, fails at `b`, and leaves exactly what the sequential
        // protocol would leave: `a` held, `b` not.
        let mut txn = Txn::new();
        let err = txn
            .acquire_group(&[
                (&a, AcquireSpec::new(m).no_wait()),
                (&b, AcquireSpec::new(m).no_wait()),
            ])
            .unwrap_err();
        assert!(matches!(err, LockError::Timeout { waited, .. } if waited == Duration::ZERO));
        assert!(txn.holds(&a) && !txn.holds(&b));
        assert_eq!(a.hold_count(m), 1);
        assert_eq!(b.hold_count(m), 1, "only the holder's lock remains on b");
        // Once the conflict clears, the same group succeeds via the fast
        // pass (a is skipped as held).
        holder.unlock_all();
        txn.acquire_group(&[
            (&a, AcquireSpec::new(m).no_wait()),
            (&b, AcquireSpec::new(m).no_wait()),
        ])
        .unwrap();
        assert!(txn.holds(&a) && txn.holds(&b));
    }

    #[test]
    fn acquire_group_rollback_leaves_no_partial_admission() {
        let (t, site) = table();
        let a = SemLock::new(t.clone());
        let b = SemLock::new(t.clone());
        let m = t.select(site, &[Value(3)]); // self-conflicting mode
        let mut holder = Txn::new();
        holder.lv(&b, m);
        let mut txn = Txn::new();
        // Poisoned escalation: poison `a` after the holder blocks `b`, so
        // both the fast pass and the escalation fail on the first entry —
        // nothing may remain held by `txn`.
        a.poison();
        let err = txn
            .acquire_group(&[
                (&a, AcquireSpec::new(m).no_wait()),
                (&b, AcquireSpec::new(m).no_wait()),
            ])
            .unwrap_err();
        assert!(err.is_poisoned());
        assert_eq!(txn.held_count(), 0);
        assert_eq!(a.total_holds(), 0, "no leaked partial admission on a");
        assert_eq!(b.hold_count(m), 1, "holder's lock undisturbed");
        a.clear_poison();
    }

    #[test]
    fn concurrent_transactions_on_commuting_modes_overlap() {
        let (t, site) = table();
        let lock = Arc::new(SemLock::new(t.clone()));
        let m1 = t.select(site, &[Value(0)]);
        let m2 = t.select(site, &[Value(1)]);
        assert_ne!(m1, m2);
        // Hold m1 in this thread, acquire m2 in another — must not block.
        let mut txn = Txn::new();
        txn.lv(&lock, m1);
        let l2 = lock.clone();
        let h = std::thread::spawn(move || {
            let mut t2 = Txn::new();
            t2.lv(&l2, m2);
            t2.held_count()
        });
        assert_eq!(h.join().unwrap(), 1);
    }
}
