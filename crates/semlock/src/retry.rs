//! Abort-retry with backoff, starvation escalation, and admission
//! throttling — the overload-control layer above the bounded acquisition
//! API.
//!
//! The paper's protocol treats aborts ([`LockError::Timeout`],
//! [`LockError::WouldDeadlock`], [`LockError::Poisoned`]) as *normal*
//! outcomes: the deadlock watchdog deliberately sacrifices the youngest
//! cycle member, and bounded waits give up at their deadline. Something has
//! to turn those aborts back into completed transactions without livelock.
//! This module is that layer, modeled on the fallback paths of hardware
//! transactional memory runtimes (abort → bounded randomized backoff →
//! pessimistic fallback):
//!
//! * [`RetryPolicy`] — bounded exponential backoff with **deterministic**
//!   splitmix64 jitter keyed by `(policy seed, txn id, attempt)`, so a
//!   chaos run replayed with the same seed and transaction ids produces
//!   byte-identical backoff schedules; per-error-kind retry budgets; and a
//!   starvation-escalation threshold.
//! * **Escalation** — after `escalate_after` aborts a transaction *ages*
//!   into a high-priority pessimistic acquisition: an effectively
//!   unbounded wait (`WaitBudget::Until(now + patience)`) that stays
//!   registered with the deadlock watchdog. A true `WaitBudget::Forever`
//!   wait never registers (see [`crate::acquire`]), so escalation opts
//!   into the watchdog by using a far deadline instead — the victim of
//!   repeated youngest-waiter aborts keeps its small (old) txn id, which
//!   the watchdog's youngest-aborts rule then spares, and a hang still
//!   times out at `patience` rather than wedging the process.
//! * [`AdmissionThrottle`] — a token-based concurrency cap with
//!   shed-on-saturation and a latched `Degraded` signal (cleared with
//!   hysteresis at half occupancy), so an open-loop arrival process
//!   cannot pile unbounded waiters onto an already saturated lock table.
//!
//! Decisions are pure: [`RetryPolicy::on_abort`] consults only the policy,
//! the per-transaction [`RetryState`], and the abort's [`LockError`] kind.
//! Wall-clock sleeping is the caller's job (e.g.
//! `interp::Interp::run_with_retry`), which keeps this module trivially
//! testable and replayable.

use crate::acquire::AcquireSpec;
use crate::error::LockError;
use crate::mode::ModeId;
use crate::sync::{AtomicU64, Ordering};
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// Per-error-kind retry budgets: how many aborts of each kind a single
/// logical transaction may absorb before the policy declares it
/// [`RetryOutcome::Exhausted`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryBudgets {
    /// Budget for [`LockError::Timeout`] aborts.
    pub timeouts: u32,
    /// Budget for [`LockError::WouldDeadlock`] aborts.
    pub deadlocks: u32,
    /// Budget for [`LockError::Poisoned`] aborts. Poison clears only via
    /// external recovery (`clear_poison`), so this budget is small by
    /// default: retrying buys time for a recovery task, not forever.
    pub poisoned: u32,
}

impl Default for RetryBudgets {
    fn default() -> RetryBudgets {
        RetryBudgets {
            timeouts: 24,
            deadlocks: 24,
            poisoned: 6,
        }
    }
}

/// What the policy decided after one abort.
///
/// `#[non_exhaustive]`: future contention-management strategies (e.g.
/// cooperative yield-to-elder, or queue-position hints) may add variants;
/// downstream matches keep a wildcard arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RetryOutcome {
    /// Re-run the transaction after sleeping for the given backoff (already
    /// jittered; deterministic given the policy seed, txn id and attempt).
    RetryAfter(Duration),
    /// Re-run the transaction *escalated*: acquisitions should switch to
    /// the high-priority pessimistic spec ([`RetryPolicy::escalated_spec`]).
    /// Once escalated, a transaction stays escalated.
    Escalate,
    /// The abort kind's retry budget is spent; give up and surface the
    /// error to the caller.
    Exhausted,
    /// The error kind is not retryable at all (e.g.
    /// [`LockError::UnlockUnderflow`], which is a caller bug, or an
    /// unknown future variant).
    Fatal,
}

/// Mutable per-logical-transaction retry bookkeeping, threaded through
/// [`RetryPolicy::on_abort`] across attempts.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetryState {
    attempts: u32,
    timeouts: u32,
    deadlocks: u32,
    poisoned: u32,
    escalated: bool,
}

impl RetryState {
    /// Fresh state for a new logical transaction.
    pub fn new() -> RetryState {
        RetryState::default()
    }

    /// Aborted attempts so far (not counting the in-flight one).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Has this transaction aged into the escalated acquisition path?
    pub fn escalated(&self) -> bool {
        self.escalated
    }
}

/// The retry policy: backoff shape, per-kind budgets, escalation threshold
/// and patience, and the jitter seed.
///
/// Construct with [`RetryPolicy::new`] (or [`RetryPolicy::from_env`]) and
/// refine with the builder methods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    base: Duration,
    cap: Duration,
    budgets: RetryBudgets,
    escalate_after: u32,
    patience: Duration,
    seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::new(0)
    }
}

impl RetryPolicy {
    /// A policy with the default shape: backoff windows doubling from
    /// 50 µs to a 5 ms cap, default [`RetryBudgets`], escalation after 6
    /// aborts with 30 s of escalated patience, jitter keyed by `seed`.
    pub fn new(seed: u64) -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_micros(50),
            cap: Duration::from_millis(5),
            budgets: RetryBudgets::default(),
            escalate_after: 6,
            patience: Duration::from_secs(30),
            seed,
        }
    }

    /// Set the first backoff window (windows double per attempt).
    pub fn backoff_base(mut self, base: Duration) -> RetryPolicy {
        self.base = base.max(Duration::from_nanos(1));
        self
    }

    /// Cap every backoff window at `cap`.
    pub fn backoff_cap(mut self, cap: Duration) -> RetryPolicy {
        self.cap = cap.max(Duration::from_nanos(1));
        self
    }

    /// Replace the per-error-kind retry budgets.
    pub fn budgets(mut self, budgets: RetryBudgets) -> RetryPolicy {
        self.budgets = budgets;
        self
    }

    /// Escalate to the high-priority pessimistic path after `n` aborts
    /// (`u32::MAX` disables escalation).
    pub fn escalate_after(mut self, n: u32) -> RetryPolicy {
        self.escalate_after = n.max(1);
        self
    }

    /// How long an escalated acquisition is willing to wait. Effectively
    /// "forever with a watchdog": far longer than any backoff, but still a
    /// real deadline so a wedged peer cannot hang the process.
    pub fn patience(mut self, patience: Duration) -> RetryPolicy {
        self.patience = patience.max(Duration::from_millis(1));
        self
    }

    /// The escalated patience (see [`RetryPolicy::patience`]).
    pub fn patience_budget(&self) -> Duration {
        self.patience
    }

    /// The jitter seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decide what to do about one abort. Pure: mutates only `st`, never
    /// sleeps. The caller sleeps on [`RetryOutcome::RetryAfter`] and
    /// switches to [`RetryPolicy::escalated_spec`] acquisitions after
    /// [`RetryOutcome::Escalate`].
    ///
    /// `txn` is the id of the attempt that just aborted; keying the jitter
    /// by it (rather than by wall clock) is what keeps chaos runs
    /// replayable — see [`RetryPolicy::backoff`].
    pub fn on_abort(&self, st: &mut RetryState, txn: u64, err: &LockError) -> RetryOutcome {
        st.attempts = st.attempts.saturating_add(1);
        let (count, budget) = match err {
            LockError::Timeout { .. } => {
                st.timeouts += 1;
                (st.timeouts, self.budgets.timeouts)
            }
            LockError::WouldDeadlock { .. } => {
                st.deadlocks += 1;
                (st.deadlocks, self.budgets.deadlocks)
            }
            LockError::Poisoned { .. } => {
                st.poisoned += 1;
                (st.poisoned, self.budgets.poisoned)
            }
            // UnlockUnderflow is a caller bug, and unknown future kinds
            // are by definition outside this policy's model.
            _ => return RetryOutcome::Fatal,
        };
        if count > budget {
            return RetryOutcome::Exhausted;
        }
        if st.escalated || st.attempts >= self.escalate_after {
            st.escalated = true;
            return RetryOutcome::Escalate;
        }
        RetryOutcome::RetryAfter(self.backoff(txn, st.attempts))
    }

    /// The jittered backoff before attempt `attempt + 1` (1-based: the
    /// first abort passes `attempt == 1`). The window doubles per attempt
    /// from `base`, capped at `cap`; the jitter draws uniformly from
    /// `[window/2, window]` via a splitmix64 hash of
    /// `(seed, txn, attempt)` — a pure function, so identical coordinates
    /// give identical backoffs on every replay.
    pub fn backoff(&self, txn: u64, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let window = self
            .base
            .saturating_mul(1u32 << exp)
            .min(self.cap)
            .max(Duration::from_nanos(1));
        let half = window / 2;
        let span = (window - half).as_nanos() as u64;
        let h = mix(self.seed, txn, attempt as u64);
        half + Duration::from_nanos(if span == 0 { 0 } else { h % (span + 1) })
    }

    /// The acquisition spec an escalated transaction uses: a high-priority
    /// pessimistic wait — `WaitBudget::Until(now + patience)` with the
    /// watchdog armed. This is the module's "`Forever` with watchdog
    /// opt-in": a true `Forever` wait never registers with the watchdog
    /// (see [`crate::acquire`]), so escalation substitutes a deadline far
    /// beyond any backoff while keeping cycle detection live. The
    /// escalated transaction's old (small) id means the youngest-aborts
    /// rule breaks any cycle it joins in some *other* transaction's favor
    /// only if that peer is younger — i.e. the starving elder finally wins.
    pub fn escalated_spec(&self, mode: ModeId) -> AcquireSpec {
        AcquireSpec::new(mode).timeout(self.patience)
    }

    /// Build a policy from the `SEMLOCK_RETRY` environment variable, a
    /// comma-separated `key=value` list applied over [`RetryPolicy::new`]
    /// with the given seed. Keys: `base_us`, `cap_us`, `timeouts`,
    /// `deadlocks`, `poisoned`, `escalate_after`, `patience_ms`, `seed`.
    /// Unknown keys and malformed values are ignored (a knob, not a
    /// config language).
    pub fn from_env(seed: u64) -> RetryPolicy {
        let mut p = RetryPolicy::new(seed);
        let Ok(s) = std::env::var("SEMLOCK_RETRY") else {
            return p;
        };
        for kv in s.split(',') {
            let mut it = kv.splitn(2, '=');
            let (Some(k), Some(v)) = (it.next(), it.next()) else {
                continue;
            };
            let Ok(n) = v.trim().parse::<u64>() else {
                continue;
            };
            match k.trim() {
                "base_us" => p.base = Duration::from_micros(n.max(1)),
                "cap_us" => p.cap = Duration::from_micros(n.max(1)),
                "timeouts" => p.budgets.timeouts = n as u32,
                "deadlocks" => p.budgets.deadlocks = n as u32,
                "poisoned" => p.budgets.poisoned = n as u32,
                "escalate_after" => p.escalate_after = (n as u32).max(1),
                "patience_ms" => p.patience = Duration::from_millis(n.max(1)),
                "seed" => p.seed = n,
                _ => {}
            }
        }
        p
    }
}

/// SplitMix64-based mixing of the jitter coordinates (same finalizer as
/// [`crate::fault`], so retry jitter and fault decisions draw from
/// independent but equally well-distributed streams).
fn mix(seed: u64, txn: u64, attempt: u64) -> u64 {
    let mut x = 0x243F6A8885A308D3u64 ^ splitmix64(seed);
    x ^= splitmix64(txn.wrapping_mul(0x9E3779B97F4A7C15) ^ x);
    x ^= splitmix64(attempt ^ x);
    x
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Admission throttle
// ---------------------------------------------------------------------------

/// Result of one [`AdmissionThrottle::admit`] call.
///
/// `#[non_exhaustive]`: a future throttle may add e.g. a `Queued` variant.
#[non_exhaustive]
#[derive(Debug)]
pub enum ThrottleDecision<'a> {
    /// Admitted; drop the permit when the transaction finishes (success
    /// *or* failure) to return the token.
    Admitted(ThrottlePermit<'a>),
    /// The throttle is saturated: the request is shed. The caller must
    /// count the shed separately from completions/failures — shed work was
    /// never attempted.
    Shed,
}

/// Former name of [`ThrottleDecision`], renamed when the lock-admission
/// trait [`crate::admission::Admission`] took the `Admission` name.
#[deprecated(since = "0.2.0", note = "renamed to `ThrottleDecision`")]
pub type Admission<'a> = ThrottleDecision<'a>;

/// A token-based concurrency cap with shed-on-saturation, modeled on the
/// fallback-path governors of HTM runtimes: when every token is out, new
/// arrivals are *shed* (rejected immediately) instead of queued, and a
/// latched `Degraded` signal tells operators the system hit saturation.
/// The signal clears with hysteresis once occupancy drains to half the
/// cap, so a throttle oscillating at the boundary doesn't flap.
#[derive(Debug)]
pub struct AdmissionThrottle {
    cap: u64,
    in_flight: AtomicU64,
    degraded: AtomicBool,
    sheds: AtomicU64,
    admitted: AtomicU64,
}

impl AdmissionThrottle {
    /// A throttle admitting at most `cap` concurrent transactions.
    pub fn new(cap: u64) -> AdmissionThrottle {
        AdmissionThrottle {
            cap: cap.max(1),
            in_flight: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            sheds: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        }
    }

    /// Try to take a token. Never blocks: saturation sheds.
    pub fn admit(&self) -> ThrottleDecision<'_> {
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.cap {
                self.degraded.store(true, Ordering::Relaxed);
                self.sheds.fetch_add(1, Ordering::Relaxed);
                crate::telemetry::count_shed();
                return ThrottleDecision::Shed;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return ThrottleDecision::Admitted(ThrottlePermit { throttle: self });
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// The concurrency cap.
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Tokens currently out.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Requests shed since construction.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Requests admitted since construction.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Has the throttle hit saturation without yet draining back below
    /// half the cap? Latched by a shed, cleared by a permit release that
    /// brings occupancy to ≤ `cap / 2`.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

/// RAII token from [`AdmissionThrottle::admit`]; returning it (by drop)
/// may clear the `Degraded` latch once occupancy has drained.
#[derive(Debug)]
pub struct ThrottlePermit<'a> {
    throttle: &'a AdmissionThrottle,
}

impl Drop for ThrottlePermit<'_> {
    fn drop(&mut self) {
        let was = self.throttle.in_flight.fetch_sub(1, Ordering::Release);
        if was.saturating_sub(1) <= self.throttle.cap / 2 {
            self.throttle.degraded.store(false, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeout_err() -> LockError {
        LockError::Timeout {
            instance: 1,
            mode: ModeId(0),
            waited: Duration::ZERO,
        }
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let a = RetryPolicy::new(42);
        let b = RetryPolicy::new(42);
        for txn in [0u64, 7, 1 << 40] {
            for attempt in 1..24u32 {
                let d = a.backoff(txn, attempt);
                assert_eq!(d, b.backoff(txn, attempt), "replay divergence");
                // Window doubles from base, capped; jitter ∈ [w/2, w].
                let w = a
                    .base
                    .saturating_mul(1 << attempt.saturating_sub(1).min(20))
                    .min(a.cap);
                assert!(d >= w / 2 && d <= w, "attempt {attempt}: {d:?} vs {w:?}");
            }
        }
        // Different seeds / txns actually jitter.
        let c = RetryPolicy::new(43);
        let differs = (1..50u32)
            .filter(|&i| a.backoff(9, i) != c.backoff(9, i))
            .count();
        assert!(differs > 0, "seed had no effect on jitter");
    }

    #[test]
    fn budgets_exhaust_per_kind() {
        let p = RetryPolicy::new(0)
            .budgets(RetryBudgets {
                timeouts: 2,
                deadlocks: 24,
                poisoned: 1,
            })
            .escalate_after(u32::MAX);
        let mut st = RetryState::new();
        assert!(matches!(
            p.on_abort(&mut st, 1, &timeout_err()),
            RetryOutcome::RetryAfter(_)
        ));
        assert!(matches!(
            p.on_abort(&mut st, 2, &timeout_err()),
            RetryOutcome::RetryAfter(_)
        ));
        assert_eq!(
            p.on_abort(&mut st, 3, &timeout_err()),
            RetryOutcome::Exhausted
        );
        // Budgets are per kind: a poisoned abort on a fresh state has its
        // own (smaller) budget.
        let mut st = RetryState::new();
        assert!(matches!(
            p.on_abort(&mut st, 1, &LockError::Poisoned { instance: 3 }),
            RetryOutcome::RetryAfter(_)
        ));
        assert_eq!(
            p.on_abort(&mut st, 2, &LockError::Poisoned { instance: 3 }),
            RetryOutcome::Exhausted
        );
    }

    #[test]
    fn escalation_latches_after_threshold() {
        let p = RetryPolicy::new(0).escalate_after(3);
        let mut st = RetryState::new();
        assert!(matches!(
            p.on_abort(&mut st, 1, &timeout_err()),
            RetryOutcome::RetryAfter(_)
        ));
        assert!(matches!(
            p.on_abort(&mut st, 2, &timeout_err()),
            RetryOutcome::RetryAfter(_)
        ));
        assert_eq!(
            p.on_abort(&mut st, 3, &timeout_err()),
            RetryOutcome::Escalate
        );
        assert!(st.escalated());
        // Once escalated, stays escalated (no backoff demotion).
        assert_eq!(
            p.on_abort(&mut st, 4, &timeout_err()),
            RetryOutcome::Escalate
        );
    }

    #[test]
    fn underflow_is_fatal() {
        let p = RetryPolicy::new(0);
        let mut st = RetryState::new();
        let e = LockError::UnlockUnderflow {
            instance: 1,
            mode: ModeId(0),
        };
        assert_eq!(p.on_abort(&mut st, 1, &e), RetryOutcome::Fatal);
    }

    #[test]
    fn escalated_spec_is_bounded_with_watchdog() {
        let p = RetryPolicy::new(0).patience(Duration::from_secs(5));
        let spec = p.escalated_spec(ModeId(2));
        assert!(spec.watchdog, "escalation must keep the watchdog armed");
        assert!(
            matches!(spec.wait, crate::acquire::WaitBudget::Until(_)),
            "escalation uses a far deadline, not a true Forever"
        );
    }

    #[test]
    fn throttle_sheds_at_cap_and_degrades_with_hysteresis() {
        let t = AdmissionThrottle::new(2);
        let p1 = match t.admit() {
            ThrottleDecision::Admitted(p) => p,
            _ => panic!("token 1 refused"),
        };
        let p2 = match t.admit() {
            ThrottleDecision::Admitted(p) => p,
            _ => panic!("token 2 refused"),
        };
        assert!(matches!(t.admit(), ThrottleDecision::Shed));
        assert!(t.is_degraded(), "shed must latch Degraded");
        assert_eq!(t.sheds(), 1);
        assert_eq!(t.in_flight(), 2);
        // Draining to cap/2 clears the latch.
        drop(p1);
        assert!(!t.is_degraded(), "half-occupancy clears Degraded");
        drop(p2);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.admitted(), 2);
    }

    #[test]
    fn from_env_parses_knobs() {
        // Process-env test: guard against parallel tests by using the
        // documented precedence only on a private key round-trip.
        std::env::set_var(
            "SEMLOCK_RETRY",
            "base_us=10, cap_us=100, timeouts=3, escalate_after=2, patience_ms=250, bogus=9, seed=77",
        );
        let p = RetryPolicy::from_env(1);
        std::env::remove_var("SEMLOCK_RETRY");
        assert_eq!(p.base, Duration::from_micros(10));
        assert_eq!(p.cap, Duration::from_micros(100));
        assert_eq!(p.budgets.timeouts, 3);
        assert_eq!(p.escalate_after, 2);
        assert_eq!(p.patience, Duration::from_millis(250));
        assert_eq!(p.seed(), 77);
    }
}
