//! Per-ADT-instance semantic locks (§2.2).
//!
//! A [`SemLock`] is the synchronization side of one ADT instance: it owns
//! one [`Mech`] per partition of the class's [`ModeTable`] and exposes the
//! mode-level `lock` / `unlock` the paper's synchronization API compiles
//! down to. Every instance carries a process-unique identifier, used both
//! for the dynamic ordering of same-equivalence-class acquisitions
//! (`unique(x)` in Fig. 12) and by the protocol checker.

use crate::mech::{Mech, WaitStrategy};
use crate::mode::{ModeId, ModeTable};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh process-unique ADT instance identifier.
pub fn fresh_instance_id() -> u64 {
    NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The semantic lock of one ADT instance.
pub struct SemLock {
    table: Arc<ModeTable>,
    mechs: Box<[Mech]>,
    id: u64,
}

impl SemLock {
    /// Create the lock for a new ADT instance of the class described by
    /// `table`, using the default (blocking) wait strategy.
    pub fn new(table: Arc<ModeTable>) -> SemLock {
        SemLock::with_strategy(table, WaitStrategy::Block)
    }

    /// Create with an explicit wait strategy (used by the ablation bench).
    pub fn with_strategy(table: Arc<ModeTable>, strategy: WaitStrategy) -> SemLock {
        let mechs = table
            .partition_sizes()
            .iter()
            .map(|&sz| Mech::new(sz as usize, strategy))
            .collect();
        SemLock {
            table,
            mechs,
            id: fresh_instance_id(),
        }
    }

    /// The class mode table.
    pub fn table(&self) -> &Arc<ModeTable> {
        &self.table
    }

    /// The process-unique instance identifier (`unique(x)` of Fig. 12).
    pub fn unique(&self) -> u64 {
        self.id
    }

    /// Acquire a locking mode. Blocks while any transaction holds a
    /// non-commuting mode on this instance.
    pub fn lock(&self, mode: ModeId) {
        let p = self.table.placement(mode);
        if p.free {
            return; // commutes with everything: admission can never fail
        }
        self.mechs[p.part as usize].lock(p.local, &p.local_conflicts);
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self, mode: ModeId) -> bool {
        let p = self.table.placement(mode);
        if p.free {
            return true;
        }
        self.mechs[p.part as usize].try_lock(p.local, &p.local_conflicts)
    }

    /// Release one hold of a locking mode.
    pub fn unlock(&self, mode: ModeId) {
        let p = self.table.placement(mode);
        if p.free {
            return;
        }
        self.mechs[p.part as usize].unlock(p.local);
    }

    /// Current hold count of a mode (diagnostics / tests).
    pub fn hold_count(&self, mode: ModeId) -> u32 {
        let p = self.table.placement(mode);
        if p.free {
            0
        } else {
            self.mechs[p.part as usize].count(p.local)
        }
    }

    /// Aggregate contention statistics over all partitions:
    /// `(acquisitions, contended)`.
    pub fn contention(&self) -> (u64, u64) {
        let mut acq = 0;
        let mut cont = 0;
        for m in self.mechs.iter() {
            acq += m.stats().acquisitions.load(Ordering::Relaxed);
            cont += m.stats().contended.load(Ordering::Relaxed);
        }
        (acq, cont)
    }
}

impl std::fmt::Debug for SemLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SemLock#{} ({}, {} partitions)",
            self.id,
            self.table.schema().name(),
            self.mechs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phi::Phi;
    use crate::schema::set_schema;
    use crate::spec::CommutSpec;
    use crate::symbolic::{SymArg, SymOp, SymbolicSet};
    use crate::value::Value;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    fn table() -> (Arc<ModeTable>, crate::mode::LockSiteId) {
        let s = set_schema();
        let spec = CommutSpec::builder(s.clone())
            .always("add", "add")
            .differ("add", 0, "remove", 0)
            .differ("add", 0, "contains", 0)
            .never("add", "size")
            .never("add", "clear")
            .always("remove", "remove")
            .differ("remove", 0, "contains", 0)
            .never("remove", "size")
            .never("remove", "clear")
            .always("contains", "contains")
            .always("contains", "size")
            .never("contains", "clear")
            .always("size", "size")
            .never("size", "clear")
            .always("clear", "clear")
            .build();
        let mut b = ModeTable::builder(s.clone(), spec, Phi::modulo(4));
        let site = b.add_site(SymbolicSet::new(vec![
            SymOp::new(s.method("add"), vec![SymArg::Var(0)]),
            SymOp::new(s.method("remove"), vec![SymArg::Var(0)]),
        ]));
        (b.build(), site)
    }

    #[test]
    fn unique_ids_are_unique() {
        let (t, _) = table();
        let a = SemLock::new(t.clone());
        let b = SemLock::new(t);
        assert_ne!(a.unique(), b.unique());
    }

    #[test]
    fn same_class_excludes_distinct_classes_run() {
        let (t, site) = table();
        let lock = Arc::new(SemLock::new(t.clone()));
        let m1 = t.select(site, &[Value(1)]);
        let m2 = t.select(site, &[Value(2)]);
        assert_ne!(m1, m2);
        // m1 self-conflicts; m2 is in a different partition.
        lock.lock(m1);
        assert!(!lock.try_lock(m1));
        assert!(lock.try_lock(m2)); // different key class admitted
        lock.unlock(m2);
        lock.unlock(m1);
        assert!(lock.try_lock(m1));
        lock.unlock(m1);
    }

    #[test]
    fn blocked_acquirer_wakes() {
        let (t, site) = table();
        let lock = Arc::new(SemLock::new(t.clone()));
        let m = t.select(site, &[Value(3)]);
        lock.lock(m);
        let flag = Arc::new(AtomicBool::new(false));
        let h = {
            let (lock, flag) = (lock.clone(), flag.clone());
            std::thread::spawn(move || {
                lock.lock(m);
                flag.store(true, Ordering::SeqCst);
                lock.unlock(m);
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(!flag.load(Ordering::SeqCst));
        lock.unlock(m);
        h.join().unwrap();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn contention_stats_accumulate() {
        let (t, site) = table();
        let lock = SemLock::new(t.clone());
        let m = t.select(site, &[Value(0)]);
        for _ in 0..10 {
            lock.lock(m);
            lock.unlock(m);
        }
        let (acq, cont) = lock.contention();
        assert_eq!(acq, 10);
        assert_eq!(cont, 0);
    }
}
