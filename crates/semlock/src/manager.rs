//! Per-ADT-instance semantic locks (§2.2).
//!
//! A [`SemLock`] is the synchronization side of one ADT instance: it owns
//! one admission backend (see [`crate::admission`], selected by
//! [`AdmissionBackend`]) per partition of the class's [`ModeTable`] and
//! exposes the
//! mode-level `lock` / `unlock` the paper's synchronization API compiles
//! down to. Every instance carries a process-unique identifier, used both
//! for the dynamic ordering of same-equivalence-class acquisitions
//! (`unique(x)` in Fig. 12) and by the protocol checker.

use crate::acquire::{AcquireSpec, WaitBudget};
use crate::admission::{
    Admission, AdmissionBackend, AnyBackend, ConflictGraphBackend, OptimisticHybridBackend,
};
use crate::error::LockError;
use crate::mech::{Acquire, Mech, MechLayout, Wait, WaitStrategy};
use crate::mode::{ModeId, ModePlacement, ModeTable};
use crate::telemetry::{self, EventKind, WaitCause};
use crate::watchdog::{self, TxnId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Elapsed nanoseconds between two [`telemetry::now_ns`] readings
/// (traced paths read the clock once per event and difference the
/// readings instead of calling `Instant::elapsed` repeatedly).
#[inline]
fn delta_ns(t0_ns: u64, t1_ns: u64) -> u64 {
    t1_ns.saturating_sub(t0_ns)
}

static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide count of poisoning events (reported by the bench harness).
static POISON_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Allocate a fresh process-unique ADT instance identifier.
pub fn fresh_instance_id() -> u64 {
    NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Total instance-poisoning events since process start.
pub fn poison_events() -> u64 {
    POISON_EVENTS.load(Ordering::Relaxed)
}

/// Stage at which an unbounded acquisition detected poisoning — decides
/// which of the two panic messages the infallible [`SemLock::lock`] keeps.
enum PoisonStage {
    /// Poisoned before admission was attempted.
    Entry,
    /// Poisoned by a holder while this acquisition waited (the admission
    /// has already been rolled back when this is returned).
    AfterWait,
}

/// The semantic lock of one ADT instance.
pub struct SemLock {
    table: Arc<ModeTable>,
    backends: Box<[AnyBackend]>,
    backend: AdmissionBackend,
    id: u64,
    /// Set when a transaction panicked during an ADT operation on this
    /// instance (or aborted after mutating it): the structure may be torn,
    /// so acquisitions fail fast until [`SemLock::clear_poison`].
    poisoned: AtomicBool,
}

/// Builder for [`SemLock`]: pick a wait strategy and an admission
/// backend, then [`build`](SemLockBuilder::build).
///
/// ```
/// # use semlock::schema::set_schema;
/// # use semlock::spec::CommutSpec;
/// # use semlock::phi::Phi;
/// # use semlock::mode::ModeTable;
/// # use semlock::{AdmissionBackend, SemLock};
/// # let schema = set_schema();
/// # let spec = CommutSpec::builder(schema.clone()).build();
/// # let table = ModeTable::builder(schema, spec, Phi::modulo(4)).build();
/// let lock = SemLock::builder(table)
///     .backend(AdmissionBackend::ConflictGraph)
///     .build();
/// ```
pub struct SemLockBuilder {
    table: Arc<ModeTable>,
    strategy: WaitStrategy,
    backend: AdmissionBackend,
}

impl SemLockBuilder {
    /// Set the wait strategy (default: blocking).
    pub fn strategy(mut self, strategy: WaitStrategy) -> SemLockBuilder {
        self.strategy = strategy;
        self
    }

    /// Set the admission backend (default: [`AdmissionBackend::Auto`]).
    pub fn backend(mut self, backend: AdmissionBackend) -> SemLockBuilder {
        self.backend = backend;
        self
    }

    /// Build the lock.
    pub fn build(self) -> SemLock {
        SemLock::with_backend(self.table, self.strategy, self.backend)
    }
}

impl SemLock {
    /// Create the lock for a new ADT instance of the class described by
    /// `table`, using the default (blocking) wait strategy and the
    /// [`AdmissionBackend::Auto`] backend.
    pub fn new(table: Arc<ModeTable>) -> SemLock {
        SemLock::with_strategy(table, WaitStrategy::Block)
    }

    /// Start building a lock with a non-default wait strategy or
    /// admission backend.
    pub fn builder(table: Arc<ModeTable>) -> SemLockBuilder {
        SemLockBuilder {
            table,
            strategy: WaitStrategy::default(),
            backend: AdmissionBackend::default(),
        }
    }

    /// Create with an explicit wait strategy (used by the ablation bench).
    pub fn with_strategy(table: Arc<ModeTable>, strategy: WaitStrategy) -> SemLock {
        SemLock::with_backend(table, strategy, AdmissionBackend::Auto)
    }

    /// Create with an explicit admission backend — the configuration
    /// surface behind which all counter layouts and admission policies
    /// live (see [`crate::admission`]).
    ///
    /// # Panics
    /// If the backend's [`AdmissionBackend::max_modes`] bound is
    /// exceeded by some partition of `table`.
    pub fn with_backend(
        table: Arc<ModeTable>,
        strategy: WaitStrategy,
        backend: AdmissionBackend,
    ) -> SemLock {
        let backends = table
            .partition_sizes()
            .iter()
            .enumerate()
            .map(|(part, &sz)| {
                let modes = sz as usize;
                match backend {
                    AdmissionBackend::Auto => {
                        AnyBackend::Word(Mech::with_layout(modes, strategy, MechLayout::Auto))
                    }
                    AdmissionBackend::Wide => {
                        AnyBackend::Word(Mech::with_layout(modes, strategy, MechLayout::Wide))
                    }
                    AdmissionBackend::Packed => {
                        AnyBackend::Word(Mech::with_layout(modes, strategy, MechLayout::Packed))
                    }
                    AdmissionBackend::Dwcas => {
                        AnyBackend::Word(Mech::with_layout(modes, strategy, MechLayout::Dwcas))
                    }
                    AdmissionBackend::ConflictGraph => AnyBackend::Graph(
                        ConflictGraphBackend::new(table.conflict_adjacency(part as u32), strategy),
                    ),
                    AdmissionBackend::OptimisticHybrid => {
                        AnyBackend::Hybrid(OptimisticHybridBackend::new(modes, strategy))
                    }
                }
            })
            .collect();
        SemLock {
            table,
            backends,
            backend,
            id: fresh_instance_id(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Create with an explicit counter representation per mechanism.
    #[deprecated(
        since = "0.2.0",
        note = "select a backend with `SemLock::with_backend` / `SemLock::builder` instead \
                of a raw counter layout"
    )]
    pub fn with_mech_layout(
        table: Arc<ModeTable>,
        strategy: WaitStrategy,
        layout: MechLayout,
    ) -> SemLock {
        let backend = match layout {
            MechLayout::Auto => AdmissionBackend::Auto,
            MechLayout::Packed => AdmissionBackend::Packed,
            MechLayout::Dwcas => AdmissionBackend::Dwcas,
            MechLayout::Wide => AdmissionBackend::Wide,
        };
        SemLock::with_backend(table, strategy, backend)
    }

    /// The configured admission backend.
    pub fn backend(&self) -> AdmissionBackend {
        self.backend
    }

    /// The class mode table.
    pub fn table(&self) -> &Arc<ModeTable> {
        &self.table
    }

    /// The process-unique instance identifier (`unique(x)` of Fig. 12).
    pub fn unique(&self) -> u64 {
        self.id
    }

    /// Acquire a locking mode. Blocks while any transaction holds a
    /// non-commuting mode on this instance.
    ///
    /// Panics if the instance is poisoned — the infallible API has no error
    /// channel, and proceeding onto possibly-torn state would be worse. Use
    /// [`SemLock::lock_checked`] (or [`SemLock::acquire`]) to observe
    /// poisoning as a structured [`LockError::Poisoned`] instead.
    pub fn lock(&self, mode: ModeId) {
        if let Err(stage) = self.lock_impl(mode) {
            match stage {
                PoisonStage::Entry => self.panic_poisoned_at_entry(),
                PoisonStage::AfterWait => self.panic_poisoned_while_waiting(),
            }
        }
    }

    /// Unbounded acquisition with a structured error channel: identical to
    /// [`SemLock::lock`] except that a poisoned instance is reported as
    /// [`LockError::Poisoned`] rather than a panic. This is what
    /// [`SemLock::acquire`] compiles an unbounded [`AcquireSpec`] down to.
    pub fn lock_checked(&self, mode: ModeId) -> Result<(), LockError> {
        self.lock_impl(mode)
            .map_err(|_| LockError::Poisoned { instance: self.id })
    }

    /// Shared core of [`SemLock::lock`]/[`SemLock::lock_checked`]. The
    /// error distinguishes *when* poisoning was detected so the infallible
    /// wrapper can keep its two distinct panic messages.
    #[inline]
    fn lock_impl(&self, mode: ModeId) -> Result<(), PoisonStage> {
        // The traced variant is outlined and `#[cold]` so that with
        // telemetry off this body stays as small as the pre-telemetry
        // code and keeps inlining into callers; the whole disabled-path
        // cost is the one relaxed load + branch. On the packed-word
        // mechanism the uncontended body below is: poison load, placement
        // lookup, one admission CAS, poison re-check — no mutex.
        if telemetry::enabled() {
            return self.lock_impl_traced(mode);
        }
        if self.is_poisoned() {
            return Err(PoisonStage::Entry);
        }
        let p = self.table.placement(mode);
        if p.free {
            return Ok(()); // commutes with everything: admission can never fail
        }
        self.backends[p.part as usize].lock(p.local, p.conflicts());
        // Re-check after admission: the instance may have been poisoned by
        // a holder that panicked while we were blocked.
        if self.is_poisoned() {
            let _ = self.backends[p.part as usize].unlock(p.local);
            return Err(PoisonStage::AfterWait);
        }
        Ok(())
    }

    /// [`SemLock::lock_impl`] with telemetry recording.
    ///
    /// Clock discipline: one [`telemetry::now_ns`] read covers the entry
    /// event and every outcome that waited nothing (uncontended admit,
    /// poison rejection at entry); only a path that actually blocked pays
    /// a second read, which then stamps the outcome event *and* supplies
    /// the wait duration.
    #[cold]
    fn lock_impl_traced(&self, mode: ModeId) -> Result<(), PoisonStage> {
        let ctx = telemetry::take_context();
        let t0 = telemetry::now_ns();
        self.tele(t0, EventKind::AcquireStart, WaitCause::None, ctx, mode, 0);
        if self.is_poisoned() {
            self.tele(
                t0,
                EventKind::PoisonRejected,
                WaitCause::Poison,
                ctx,
                mode,
                0,
            );
            return Err(PoisonStage::Entry);
        }
        let p = self.table.placement(mode);
        if p.free {
            self.tele(t0, EventKind::Admit, WaitCause::Uncontended, ctx, mode, 0);
            return Ok(());
        }
        self.tele_sample_conflicts(t0, ctx, mode, p);
        let waited = self.backends[p.part as usize].lock(p.local, p.conflicts());
        if self.is_poisoned() {
            let _ = self.backends[p.part as usize].unlock(p.local);
            let t1 = telemetry::now_ns();
            self.tele(
                t1,
                EventKind::PoisonRejected,
                WaitCause::Poison,
                ctx,
                mode,
                delta_ns(t0, t1),
            );
            return Err(PoisonStage::AfterWait);
        }
        if waited {
            let t1 = telemetry::now_ns();
            self.tele(
                t1,
                EventKind::Admit,
                WaitCause::Conflict,
                ctx,
                mode,
                delta_ns(t0, t1),
            );
        } else {
            self.tele(t0, EventKind::Admit, WaitCause::Uncontended, ctx, mode, 0);
        }
        Ok(())
    }

    /// The unified acquisition entry point: compiles an [`AcquireSpec`]
    /// down to the matching fixed-shape path. `lock`, `try_lock_checked`
    /// and `lock_deadline` are the specialized forms this generalizes; all
    /// behave identically to the equivalent spec.
    ///
    /// A bounded spec with the watchdog enabled registers under a fresh
    /// transaction id holding nothing — right for standalone (non-[`crate::txn::Txn`])
    /// acquisitions, which cannot be part of a waits-for cycle through
    /// other instances. Acquisitions inside a transaction go through
    /// [`crate::txn::Txn::acquire`], which routes here via
    /// [`SemLock::acquire_as`] with its real id and held set.
    pub fn acquire(&self, spec: &AcquireSpec) -> Result<(), LockError> {
        match spec.wait {
            WaitBudget::Forever => self.lock_checked(spec.mode),
            WaitBudget::DontWait => self.try_lock_checked(spec.mode),
            WaitBudget::Until(deadline) => self.lock_deadline_impl(
                spec.mode,
                deadline,
                crate::txn::next_txn_id(),
                &[],
                spec.watchdog,
            ),
        }
    }

    /// [`SemLock::acquire`] on behalf of transaction `txn` already holding
    /// `held` — the watchdog-aware form [`crate::txn::Txn::acquire`] uses.
    pub fn acquire_as(
        &self,
        spec: &AcquireSpec,
        txn: TxnId,
        held: &[(u64, ModeId)],
    ) -> Result<(), LockError> {
        match spec.wait {
            WaitBudget::Forever => self.lock_checked(spec.mode),
            WaitBudget::DontWait => self.try_lock_checked(spec.mode),
            WaitBudget::Until(deadline) => {
                self.lock_deadline_impl(spec.mode, deadline, txn, held, spec.watchdog)
            }
        }
    }

    #[cold]
    #[inline(never)]
    fn panic_poisoned_at_entry(&self) -> ! {
        panic!(
            "SemLock#{}: instance is poisoned (a transaction panicked \
             mid-operation); acquire through try_lock_checked/lock_deadline \
             or call clear_poison",
            self.id
        );
    }

    #[cold]
    #[inline(never)]
    fn panic_poisoned_while_waiting(&self) -> ! {
        panic!(
            "SemLock#{}: instance was poisoned while this acquisition waited",
            self.id
        );
    }

    /// Try to acquire without blocking. Returns `false` for both a
    /// conflicting hold and a poisoned instance; use
    /// [`SemLock::try_lock_checked`] to distinguish them.
    pub fn try_lock(&self, mode: ModeId) -> bool {
        self.try_lock_checked(mode).is_ok()
    }

    /// Try to acquire without blocking, reporting *why* the acquisition
    /// failed: [`LockError::Poisoned`] for a poisoned instance,
    /// [`LockError::Timeout`] (with a zero wait) for a conflicting hold.
    pub fn try_lock_checked(&self, mode: ModeId) -> Result<(), LockError> {
        // Outlined traced variant for the same reason as [`SemLock::lock`].
        if telemetry::enabled() {
            return self.try_lock_checked_traced(mode);
        }
        if self.is_poisoned() {
            return Err(LockError::Poisoned { instance: self.id });
        }
        let p = self.table.placement(mode);
        if p.free {
            return Ok(());
        }
        if self.backends[p.part as usize].try_lock(p.local, p.conflicts()) {
            if self.is_poisoned() {
                let _ = self.backends[p.part as usize].unlock(p.local);
                return Err(LockError::Poisoned { instance: self.id });
            }
            Ok(())
        } else {
            Err(LockError::Timeout {
                instance: self.id,
                mode,
                waited: std::time::Duration::ZERO,
            })
        }
    }

    /// [`SemLock::try_lock_checked`] with telemetry recording. Never
    /// blocks, so a single clock read at entry stamps every event.
    #[cold]
    fn try_lock_checked_traced(&self, mode: ModeId) -> Result<(), LockError> {
        let ctx = telemetry::take_context();
        let t0 = telemetry::now_ns();
        self.tele(t0, EventKind::AcquireStart, WaitCause::None, ctx, mode, 0);
        if self.is_poisoned() {
            self.tele(
                t0,
                EventKind::PoisonRejected,
                WaitCause::Poison,
                ctx,
                mode,
                0,
            );
            return Err(LockError::Poisoned { instance: self.id });
        }
        let p = self.table.placement(mode);
        if p.free {
            self.tele(t0, EventKind::Admit, WaitCause::Uncontended, ctx, mode, 0);
            return Ok(());
        }
        if self.backends[p.part as usize].try_lock(p.local, p.conflicts()) {
            if self.is_poisoned() {
                let _ = self.backends[p.part as usize].unlock(p.local);
                self.tele(
                    t0,
                    EventKind::PoisonRejected,
                    WaitCause::Poison,
                    ctx,
                    mode,
                    0,
                );
                return Err(LockError::Poisoned { instance: self.id });
            }
            self.tele(t0, EventKind::Admit, WaitCause::Uncontended, ctx, mode, 0);
            Ok(())
        } else {
            self.tele_sample_conflicts(t0, ctx, mode, p);
            self.tele(t0, EventKind::Timeout, WaitCause::Conflict, ctx, mode, 0);
            Err(LockError::Timeout {
                instance: self.id,
                mode,
                waited: std::time::Duration::ZERO,
            })
        }
    }

    /// All-or-nothing batched admission of several modes on this
    /// instance. Never blocks. On `Ok(())` every mode is held; on any
    /// error **no mode remains held** (already-admitted partitions are
    /// rolled back in reverse order).
    ///
    /// Modes are grouped by partition and each partition admits through
    /// its backend's [`Admission::lock_group`] — one CAS per distinct
    /// partition word on the packed/Dwcas layouts. A conflict reports
    /// [`LockError::Timeout`] with a zero wait (as [`SemLock::try_lock_checked`]);
    /// the caller escalates to the blocking per-mode protocol.
    ///
    /// Mutually conflicting modes in one group are refused (a group may
    /// not exclude itself) — the OS2PL discipline never requests one, as
    /// a transaction locks each instance at most once.
    pub fn try_lock_group_checked(&self, modes: &[ModeId]) -> Result<(), LockError> {
        match modes {
            [] => return Ok(()),
            [m] => return self.try_lock_checked(*m),
            _ => {}
        }
        // Traced path: per-member probes with rollback, so every event
        // (AcquireStart/Admit/Timeout/Release) is attributed per mode.
        if telemetry::enabled() {
            return self.try_lock_group_traced(modes);
        }
        if self.is_poisoned() {
            return Err(LockError::Poisoned { instance: self.id });
        }
        let placements: Vec<&ModePlacement> = modes
            .iter()
            .map(|&m| self.table.placement(m))
            .filter(|p| !p.free)
            .collect();
        // Group members by partition, ascending — the canonical word
        // order the rollback walks in reverse.
        let mut parts: Vec<u32> = placements.iter().map(|p| p.part).collect();
        parts.sort_unstable();
        parts.dedup();
        let mut admitted: Vec<u32> = Vec::with_capacity(parts.len());
        for &part in &parts {
            let members: Vec<crate::mech::GroupRequest<'_>> = placements
                .iter()
                .filter(|p| p.part == part)
                .map(|p| crate::mech::GroupRequest {
                    local: p.local,
                    cs: p.conflicts(),
                })
                .collect();
            if !self.backends[part as usize].lock_group(&members) {
                self.rollback_group(&placements, &admitted);
                return Err(LockError::Timeout {
                    instance: self.id,
                    mode: *modes.first().unwrap(),
                    waited: std::time::Duration::ZERO,
                });
            }
            admitted.push(part);
        }
        // Re-check after admission, as every acquisition path does.
        if self.is_poisoned() {
            self.rollback_group(&placements, &admitted);
            return Err(LockError::Poisoned { instance: self.id });
        }
        Ok(())
    }

    /// Release every member of the partitions in `admitted` (reverse
    /// canonical order) — the rollback half of
    /// [`SemLock::try_lock_group_checked`].
    fn rollback_group(&self, placements: &[&ModePlacement], admitted: &[u32]) {
        for &part in admitted.iter().rev() {
            for p in placements.iter().rev().filter(|p| p.part == part) {
                let released = self.backends[part as usize].unlock(p.local);
                debug_assert!(released, "group rollback released an unheld mode");
            }
        }
    }

    /// [`SemLock::try_lock_group_checked`] with telemetry recording:
    /// sequential per-member probes (each traced) with reverse rollback.
    #[cold]
    fn try_lock_group_traced(&self, modes: &[ModeId]) -> Result<(), LockError> {
        for (i, &m) in modes.iter().enumerate() {
            if let Err(e) = self.try_lock_checked(m) {
                for &m2 in modes[..i].iter().rev() {
                    self.unlock(m2);
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Bounded acquisition with deadlock detection: wait for admission
    /// until `deadline`, probing the deadlock watchdog while blocked.
    ///
    /// `txn` identifies the acquiring transaction and `held` is the set of
    /// `(instance id, mode)` pairs it already holds — both feed the
    /// watchdog's waits-for graph. The watchdog is registered only after
    /// the wait has lasted one probe slice, so the uncontended path touches
    /// nothing beyond the poison flag. A waits-for cycle sighted on two
    /// consecutive probes aborts the **youngest** member (largest `txn`)
    /// with [`LockError::WouldDeadlock`].
    pub fn lock_deadline(
        &self,
        mode: ModeId,
        deadline: Instant,
        txn: TxnId,
        held: &[(u64, ModeId)],
    ) -> Result<(), LockError> {
        self.lock_deadline_impl(mode, deadline, txn, held, true)
    }

    /// [`SemLock::lock_deadline`] with the watchdog participation made
    /// explicit ([`AcquireSpec::no_watchdog`]): with `watchdog` false the
    /// wait still times out at its deadline but never registers in the
    /// waits-for graph, so it can neither sight a cycle nor be aborted as
    /// one's victim.
    fn lock_deadline_impl(
        &self,
        mode: ModeId,
        deadline: Instant,
        txn: TxnId,
        held: &[(u64, ModeId)],
        watchdog: bool,
    ) -> Result<(), LockError> {
        let tel = telemetry::enabled();
        let mut ctx = (txn, telemetry::SITE_NONE);
        // One clock read serves the entry event, the no-wait outcomes, and
        // the wait origin; blocked outcomes pay exactly one more read that
        // stamps the outcome event and supplies both the event's `wait_ns`
        // and the error's `waited`.
        let t0 = telemetry::now_ns();
        if tel {
            // The caller's txn parameter is authoritative; only the pending
            // site comes from the thread-local context.
            ctx.1 = telemetry::take_context().1;
            self.tele(t0, EventKind::AcquireStart, WaitCause::None, ctx, mode, 0);
        }
        if self.is_poisoned() {
            if tel {
                self.tele(
                    t0,
                    EventKind::PoisonRejected,
                    WaitCause::Poison,
                    ctx,
                    mode,
                    0,
                );
            }
            return Err(LockError::Poisoned { instance: self.id });
        }
        let p = self.table.placement(mode);
        if p.free {
            if tel {
                self.tele(t0, EventKind::Admit, WaitCause::Uncontended, ctx, mode, 0);
            }
            return Ok(());
        }
        let contended_entry = tel && self.tele_sample_conflicts(t0, ctx, mode, p);
        let wd = watchdog::global();
        let mut registered = false;
        let mut pending: Option<Vec<TxnId>> = None;
        let mut abort_cycle: Vec<TxnId> = Vec::new();
        let outcome = self.backends[p.part as usize].lock_deadline(
            p.local,
            p.conflicts(),
            deadline,
            &mut || {
                if !watchdog {
                    return Wait::Continue;
                }
                if !registered {
                    wd.register(txn, self.id, mode, self.table.clone(), held.to_vec());
                    registered = true;
                    return Wait::Continue;
                }
                match wd.cycle_through(txn) {
                    // Only the youngest member aborts; a cycle must be
                    // sighted twice in a row to rule out stale entries from
                    // waiters that just acquired but have not deregistered.
                    Some(cycle) if cycle.iter().max() == Some(&txn) => {
                        if pending.as_ref() == Some(&cycle) {
                            abort_cycle = cycle;
                            return Wait::Abandon;
                        }
                        pending = Some(cycle);
                    }
                    _ => pending = None,
                }
                Wait::Continue
            },
        );
        if registered {
            wd.deregister(txn);
        }
        match outcome {
            Acquire::Acquired => {
                // Re-check after admission: a holder may have poisoned the
                // instance (panic mid-operation) while we were blocked.
                if self.is_poisoned() {
                    let _ = self.backends[p.part as usize].unlock(p.local);
                    if tel {
                        let t1 = telemetry::now_ns();
                        self.tele(
                            t1,
                            EventKind::PoisonRejected,
                            WaitCause::Poison,
                            ctx,
                            mode,
                            delta_ns(t0, t1),
                        );
                    }
                    return Err(LockError::Poisoned { instance: self.id });
                }
                if tel {
                    if contended_entry || registered {
                        let t1 = telemetry::now_ns();
                        self.tele(
                            t1,
                            EventKind::Admit,
                            WaitCause::Conflict,
                            ctx,
                            mode,
                            delta_ns(t0, t1),
                        );
                    } else {
                        self.tele(t0, EventKind::Admit, WaitCause::Uncontended, ctx, mode, 0);
                    }
                }
                Ok(())
            }
            Acquire::TimedOut => {
                let t1 = telemetry::now_ns();
                let waited = delta_ns(t0, t1);
                if tel {
                    self.tele(
                        t1,
                        EventKind::Timeout,
                        WaitCause::Conflict,
                        ctx,
                        mode,
                        waited,
                    );
                }
                Err(LockError::Timeout {
                    instance: self.id,
                    mode,
                    waited: Duration::from_nanos(waited),
                })
            }
            Acquire::Abandoned => {
                wd.note_deadlock(txn, self.id, mode, ctx.1, &abort_cycle);
                if tel {
                    let t1 = telemetry::now_ns();
                    self.tele(
                        t1,
                        EventKind::CycleAborted,
                        WaitCause::Deadlock,
                        ctx,
                        mode,
                        delta_ns(t0, t1),
                    );
                }
                Err(LockError::WouldDeadlock {
                    instance: self.id,
                    mode,
                    cycle: abort_cycle,
                })
            }
        }
    }

    /// Mark the instance poisoned: its invariants may be torn. All
    /// subsequent acquisitions fail fast until [`SemLock::clear_poison`].
    pub fn poison(&self) {
        if !self.poisoned.swap(true, Ordering::SeqCst) {
            POISON_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Is the instance poisoned?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Explicit escape hatch mirroring `std::sync::Mutex::clear_poison`:
    /// the caller asserts it has repaired (or accepts) the instance state.
    pub fn clear_poison(&self) {
        self.poisoned.store(false, Ordering::SeqCst);
    }

    /// Sum of hold counts over every mode (quiescence checks: zero means
    /// no transaction holds any mode on this instance).
    pub fn total_holds(&self) -> u64 {
        self.backends.iter().map(|m| m.held_total()).sum()
    }

    /// Bounded acquisitions that timed out, summed over all partitions.
    pub fn timeout_count(&self) -> u64 {
        self.backends
            .iter()
            .map(|m| m.stats().timeouts.load(Ordering::Relaxed))
            .sum()
    }

    /// Release one hold of a locking mode.
    ///
    /// A refused double release (see [`SemLock::unlock_checked`]) is
    /// logged to stderr here — the infallible signature has no error
    /// channel, and the instance has already been poisoned.
    pub fn unlock(&self, mode: ModeId) {
        if let Err(e) = self.unlock_checked(mode) {
            eprintln!("semlock: {e}");
        }
    }

    /// Release one hold of a locking mode, reporting a refused release.
    ///
    /// A release that would underflow the mode's hold counter (a double
    /// unlock — necessarily a caller bug) is refused by the mechanism in
    /// every build; this wrapper then **poisons the instance** (its
    /// bookkeeping can no longer be trusted) and returns
    /// [`LockError::UnlockUnderflow`].
    pub fn unlock_checked(&self, mode: ModeId) -> Result<(), LockError> {
        // Outlined traced variant for the same reason as [`SemLock::lock`].
        if telemetry::enabled() {
            return self.unlock_checked_traced(mode);
        }
        let p = self.table.placement(mode);
        if p.free {
            return Ok(());
        }
        if self.backends[p.part as usize].unlock(p.local) {
            Ok(())
        } else {
            self.poison();
            Err(LockError::UnlockUnderflow {
                instance: self.id,
                mode,
            })
        }
    }

    /// [`SemLock::unlock_checked`] with telemetry recording.
    #[cold]
    fn unlock_checked_traced(&self, mode: ModeId) -> Result<(), LockError> {
        let ctx = telemetry::take_context();
        let t0 = telemetry::now_ns();
        let p = self.table.placement(mode);
        if p.free {
            self.tele(t0, EventKind::Release, WaitCause::None, ctx, mode, 0);
            return Ok(());
        }
        if self.backends[p.part as usize].unlock(p.local) {
            self.tele(t0, EventKind::Release, WaitCause::None, ctx, mode, 0);
            Ok(())
        } else {
            self.poison();
            self.tele(
                t0,
                EventKind::UnlockUnderflow,
                WaitCause::None,
                ctx,
                mode,
                0,
            );
            Err(LockError::UnlockUnderflow {
                instance: self.id,
                mode,
            })
        }
    }

    /// Releases refused because they would have underflowed a hold
    /// counter, summed over all partitions.
    pub fn underflow_count(&self) -> u64 {
        self.backends
            .iter()
            .map(|m| m.stats().underflows.load(Ordering::Relaxed))
            .sum()
    }

    /// Record one telemetry event for this instance (caller has already
    /// checked [`telemetry::enabled`]).
    #[inline]
    fn tele(
        &self,
        t_ns: u64,
        kind: EventKind,
        cause: WaitCause,
        ctx: (u64, u32),
        mode: ModeId,
        wait_ns: u64,
    ) {
        telemetry::record_at(
            t_ns,
            kind,
            cause,
            ctx.0,
            ctx.1,
            self.id,
            mode.0,
            telemetry::MODE_NONE,
            wait_ns,
        );
    }

    /// Sample currently-held conflicting modes and record one
    /// [`EventKind::Blocked`] observation per holder (feeds the
    /// conflict-pair matrix). Racy by design — a sample, not an admission
    /// decision. Returns whether any conflicting hold was observed.
    fn tele_sample_conflicts(
        &self,
        t_ns: u64,
        ctx: (u64, u32),
        mode: ModeId,
        p: &ModePlacement,
    ) -> bool {
        let held = self.backends[p.part as usize].held_conflicting(&p.local_conflicts);
        for &local in &held {
            let other = self
                .table
                .mode_for_local(p.part, local)
                .map(|m| m.0)
                .unwrap_or(telemetry::MODE_NONE);
            telemetry::record_at(
                t_ns,
                EventKind::Blocked,
                WaitCause::Conflict,
                ctx.0,
                ctx.1,
                self.id,
                mode.0,
                other,
                0,
            );
        }
        !held.is_empty()
    }

    /// Current hold count of a mode (diagnostics / tests).
    pub fn hold_count(&self, mode: ModeId) -> u32 {
        let p = self.table.placement(mode);
        if p.free {
            0
        } else {
            self.backends[p.part as usize].count(p.local)
        }
    }

    /// Aggregate contention statistics over all partitions:
    /// `(acquisitions, contended)`.
    pub fn contention(&self) -> (u64, u64) {
        let mut acq = 0;
        let mut cont = 0;
        for m in self.backends.iter() {
            acq += m.stats().acquisitions.load(Ordering::Relaxed);
            cont += m.stats().contended.load(Ordering::Relaxed);
        }
        (acq, cont)
    }
}

impl std::fmt::Debug for SemLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SemLock#{} ({}, {} partitions)",
            self.id,
            self.table.schema().name(),
            self.backends.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phi::Phi;
    use crate::schema::set_schema;
    use crate::spec::CommutSpec;
    use crate::symbolic::{SymArg, SymOp, SymbolicSet};
    use crate::value::Value;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    fn table() -> (Arc<ModeTable>, crate::mode::LockSiteId) {
        let s = set_schema();
        let spec = CommutSpec::builder(s.clone())
            .always("add", "add")
            .differ("add", 0, "remove", 0)
            .differ("add", 0, "contains", 0)
            .never("add", "size")
            .never("add", "clear")
            .always("remove", "remove")
            .differ("remove", 0, "contains", 0)
            .never("remove", "size")
            .never("remove", "clear")
            .always("contains", "contains")
            .always("contains", "size")
            .never("contains", "clear")
            .always("size", "size")
            .never("size", "clear")
            .always("clear", "clear")
            .build();
        let mut b = ModeTable::builder(s.clone(), spec, Phi::modulo(4));
        let site = b.add_site(SymbolicSet::new(vec![
            SymOp::new(s.method("add"), vec![SymArg::Var(0)]),
            SymOp::new(s.method("remove"), vec![SymArg::Var(0)]),
        ]));
        (b.build(), site)
    }

    #[test]
    fn unique_ids_are_unique() {
        let (t, _) = table();
        let a = SemLock::new(t.clone());
        let b = SemLock::new(t);
        assert_ne!(a.unique(), b.unique());
    }

    #[test]
    fn same_class_excludes_distinct_classes_run() {
        let (t, site) = table();
        let lock = Arc::new(SemLock::new(t.clone()));
        let m1 = t.select(site, &[Value(1)]);
        let m2 = t.select(site, &[Value(2)]);
        assert_ne!(m1, m2);
        // m1 self-conflicts; m2 is in a different partition.
        lock.lock(m1);
        assert!(!lock.try_lock(m1));
        assert!(lock.try_lock(m2)); // different key class admitted
        lock.unlock(m2);
        lock.unlock(m1);
        assert!(lock.try_lock(m1));
        lock.unlock(m1);
    }

    #[test]
    fn blocked_acquirer_wakes() {
        let (t, site) = table();
        let lock = Arc::new(SemLock::new(t.clone()));
        let m = t.select(site, &[Value(3)]);
        lock.lock(m);
        let flag = Arc::new(AtomicBool::new(false));
        let h = {
            let (lock, flag) = (lock.clone(), flag.clone());
            std::thread::spawn(move || {
                lock.lock(m);
                flag.store(true, Ordering::SeqCst);
                lock.unlock(m);
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(!flag.load(Ordering::SeqCst));
        lock.unlock(m);
        h.join().unwrap();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn poisoned_instance_rejects_until_cleared() {
        let (t, site) = table();
        let lock = SemLock::new(t.clone());
        let m = t.select(site, &[Value(1)]);
        lock.poison();
        assert!(lock.is_poisoned());
        assert!(!lock.try_lock(m));
        assert!(matches!(
            lock.try_lock_checked(m),
            Err(crate::error::LockError::Poisoned { .. })
        ));
        assert!(matches!(
            lock.lock_deadline(m, std::time::Instant::now(), 1, &[]),
            Err(crate::error::LockError::Poisoned { .. })
        ));
        lock.clear_poison();
        assert!(!lock.is_poisoned());
        assert!(lock.try_lock(m));
        lock.unlock(m);
        assert_eq!(lock.total_holds(), 0);
    }

    #[test]
    fn lock_deadline_times_out_against_conflicting_hold() {
        let (t, site) = table();
        let lock = SemLock::new(t.clone());
        let m = t.select(site, &[Value(3)]);
        lock.lock(m);
        let start = std::time::Instant::now();
        let err = lock
            .lock_deadline(m, start + Duration::from_millis(25), 99, &[])
            .unwrap_err();
        assert!(
            matches!(err, crate::error::LockError::Timeout { .. }),
            "{err}"
        );
        assert!(lock.timeout_count() >= 1);
        lock.unlock(m);
        assert_eq!(lock.total_holds(), 0);
    }

    #[test]
    fn waiter_observes_poison_applied_while_blocked() {
        let (t, site) = table();
        let lock = Arc::new(SemLock::new(t.clone()));
        let m = t.select(site, &[Value(3)]);
        lock.lock(m);
        let h = {
            let lock = lock.clone();
            std::thread::spawn(move || {
                lock.lock_deadline(
                    m,
                    std::time::Instant::now() + Duration::from_secs(5),
                    7,
                    &[],
                )
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        // Simulate a holder panicking mid-operation: poison, then release.
        lock.poison();
        lock.unlock(m);
        let res = h.join().unwrap();
        assert!(matches!(res, Err(crate::error::LockError::Poisoned { .. })));
        assert_eq!(lock.total_holds(), 0, "rejected waiter must not leak");
        lock.clear_poison();
    }

    #[test]
    fn deadlock_cycle_aborts_youngest_waiter() {
        // Classic two-instance cycle through the bounded API: txn 1 holds
        // `a` and wants `b`; txn 2 holds `b` and wants `a`. The watchdog
        // must abort the youngest (larger txn id) well before the 10 s
        // deadline; the older waiter then acquires.
        let (t, site) = table();
        let a = Arc::new(SemLock::new(t.clone()));
        let b = Arc::new(SemLock::new(t.clone()));
        let m = t.select(site, &[Value(3)]); // self-conflicting mode
        let gate = Arc::new(std::sync::Barrier::new(2));
        let mk =
            |hold: Arc<SemLock>, want: Arc<SemLock>, txn: u64, gate: Arc<std::sync::Barrier>| {
                std::thread::spawn(move || {
                    hold.lock(m);
                    gate.wait();
                    let held = [(hold.unique(), m)];
                    let res = want.lock_deadline(
                        m,
                        std::time::Instant::now() + Duration::from_secs(10),
                        txn,
                        &held,
                    );
                    if res.is_ok() {
                        want.unlock(m);
                    }
                    hold.unlock(m);
                    res
                })
            };
        let start = std::time::Instant::now();
        let h1 = mk(a.clone(), b.clone(), 1001, gate.clone());
        let h2 = mk(b.clone(), a.clone(), 1002, gate.clone());
        let r1 = h1.join().unwrap();
        let r2 = h2.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(8),
            "watchdog did not break the deadlock before the deadline"
        );
        let aborted: Vec<_> = [(1001u64, &r1), (1002u64, &r2)]
            .into_iter()
            .filter(|(_, r)| matches!(r, Err(crate::error::LockError::WouldDeadlock { .. })))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(aborted, vec![1002], "exactly the youngest waiter aborts");
        assert!(r1.is_ok(), "the older waiter proceeds: {r1:?}");
        assert_eq!(a.total_holds() + b.total_holds(), 0);
    }

    #[test]
    fn contention_stats_accumulate() {
        let (t, site) = table();
        let lock = SemLock::new(t.clone());
        let m = t.select(site, &[Value(0)]);
        for _ in 0..10 {
            lock.lock(m);
            lock.unlock(m);
        }
        let (acq, cont) = lock.contention();
        assert_eq!(acq, 10);
        assert_eq!(cont, 0);
    }
}
