//! Contention telemetry: lock-site tracing, wait histograms, exporters.
//!
//! A low-overhead event layer recording what the semantic-lock runtime does
//! at every acquisition boundary: acquire start, admission, release,
//! timeout, poison rejection and deadlock abort, each stamped with the
//! locking mode, ADT instance, transaction id, wait cause and — when the
//! acquisition came from compiler-inserted code — the **stable lock-site
//! id** the `synth` crate stamped on the `LS(l)` site, so contention
//! attributes back to IR source lines.
//!
//! ## Design constraints
//!
//! * **Disabled-path cost is one branch on a static flag.** Every emission
//!   point in [`crate::mech`] / [`crate::manager`] / [`crate::txn`] is
//!   guarded by [`enabled`], a relaxed load of one process-global
//!   `AtomicBool`. When the flag is off nothing allocates, no `Instant` is
//!   read, and no atomics beyond the runtime's existing counters are
//!   touched.
//! * **Recording is lock-free and per-thread.** Each recording thread owns
//!   a fixed-size ring of seqlock slots built from plain atomic words; a
//!   write is a handful of relaxed stores bracketed by two release stores
//!   of the slot sequence number. Readers ([`snapshot`]) may run
//!   concurrently and simply discard torn slots. When a ring wraps, the
//!   oldest events are overwritten and counted as dropped — recording
//!   never blocks.
//! * **Aggregation is offline.** Histograms, per-site counters and the
//!   conflict-pair matrix are computed by [`Metrics::collect`] from a
//!   snapshot, not maintained on the hot path.
//!
//! ## Event balance invariant
//!
//! For every `(txn, instance, mode, site)` key, the stream satisfies
//! `AcquireStart count == Admit + Timeout + PoisonRejected + CycleAborted`
//! and `Release count == Admit count` — every acquisition that starts ends
//! in exactly one terminal, and only admitted acquisitions release.
//! [`check_balanced`] verifies this; the property suite runs it over chaos
//! and interpreter workloads. [`EventKind::Blocked`] (a conflict
//! observation used for the conflict-pair matrix) and
//! [`EventKind::UnlockUnderflow`] (a refused double release) sit outside
//! the invariant.

use parking_lot::Mutex;
use std::cell::{Cell, OnceCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Sentinel site id for acquisitions not attributable to a compiler-
/// inserted lock site (hand-written runtime calls, tests).
pub const SITE_NONE: u32 = u32::MAX;

/// Sentinel mode value for events without a secondary mode.
pub const MODE_NONE: u32 = u32::MAX;

/// Default events retained per recording thread before the ring wraps and
/// the oldest are dropped (counted, never blocking the writer). The
/// `SEMLOCK_TELEMETRY_CAP` environment variable overrides this per
/// process — see [`ring_capacity`].
pub const RING_CAPACITY: usize = 1 << 14;

/// Per-thread ring capacity in effect for this process: the value of the
/// `SEMLOCK_TELEMETRY_CAP` environment variable (rounded up to a power of
/// two, clamped to `64..=2^24`) or [`RING_CAPACITY`] when unset or
/// unparsable. Read once, at the first ring allocation — changing the
/// variable afterwards has no effect.
pub fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SEMLOCK_TELEMETRY_CAP")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map(|n| n.clamp(64, 1 << 24).next_power_of_two())
            .unwrap_or(RING_CAPACITY)
    })
}

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry recording on? One relaxed atomic load — this is the whole
/// disabled-path cost at every emission point.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Turn recording on ([`set_enabled`]`(true)`).
pub fn enable() {
    set_enabled(true);
}

/// Turn recording off ([`set_enabled`]`(false)`).
pub fn disable() {
    set_enabled(false);
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the telemetry epoch (first use in this process).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Retry / overload counters
// ---------------------------------------------------------------------------
//
// Unlike the event rings these are *always on*: they are four relaxed
// increments on paths that already paid for an abort or a shed, so there
// is no hot-path cost to gate. They deliberately stay out of the packed
// ring-event encoding (`EventKind` is bit-packed into ring words and
// consumed by `check_balanced`; retries span *multiple* balanced
// transactions, one per attempt, so they are a different axis).

static RETRIES: AtomicU64 = AtomicU64::new(0);
static ESCALATIONS: AtomicU64 = AtomicU64::new(0);
static SHEDS: AtomicU64 = AtomicU64::new(0);
static EXHAUSTED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide retry/overload counters (see
/// [`retry_counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryCounters {
    /// Aborted attempts that were re-executed (each backoff or escalated
    /// re-run counts once).
    pub retries: u64,
    /// Transactions that aged into the escalated pessimistic path.
    pub escalations: u64,
    /// Requests shed by an [`crate::retry::AdmissionThrottle`].
    pub sheds: u64,
    /// Logical transactions that exhausted a retry budget and surfaced
    /// their final error.
    pub exhausted: u64,
}

/// Count one retried attempt.
#[inline]
pub fn count_retry() {
    RETRIES.fetch_add(1, Ordering::Relaxed);
}

/// Count one escalation (a transaction's *first* transition only).
#[inline]
pub fn count_escalation() {
    ESCALATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Count one shed admission.
#[inline]
pub fn count_shed() {
    SHEDS.fetch_add(1, Ordering::Relaxed);
}

/// Count one budget-exhausted transaction.
#[inline]
pub fn count_exhausted() {
    EXHAUSTED.fetch_add(1, Ordering::Relaxed);
}

/// Read the retry/overload counters.
pub fn retry_counters() -> RetryCounters {
    RetryCounters {
        retries: RETRIES.load(Ordering::Relaxed),
        escalations: ESCALATIONS.load(Ordering::Relaxed),
        sheds: SHEDS.load(Ordering::Relaxed),
        exhausted: EXHAUSTED.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// What happened at an acquisition boundary.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum EventKind {
    /// A transaction asked for a mode (before any admission check).
    AcquireStart = 0,
    /// The mode was admitted (terminal of a successful acquisition).
    Admit = 1,
    /// An admitted mode was released.
    Release = 2,
    /// A bounded acquisition gave up at its deadline (terminal).
    Timeout = 3,
    /// The acquisition was rejected because the instance is poisoned
    /// (terminal; `cause` says whether before or after admission).
    PoisonRejected = 4,
    /// The deadlock watchdog aborted this acquisition (terminal); the
    /// cycle membership is in the matching [`CycleRecord`].
    CycleAborted = 5,
    /// Conflict observation: at acquire time some conflicting mode
    /// (`other_mode`) was held. Feeds the conflict-pair matrix; not part
    /// of the balance invariant.
    Blocked = 6,
    /// A release was refused because the hold counter would underflow
    /// (double unlock). The instance is poisoned by the caller.
    UnlockUnderflow = 7,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::AcquireStart,
            1 => EventKind::Admit,
            2 => EventKind::Release,
            3 => EventKind::Timeout,
            4 => EventKind::PoisonRejected,
            5 => EventKind::CycleAborted,
            6 => EventKind::Blocked,
            7 => EventKind::UnlockUnderflow,
            _ => return None,
        })
    }

    /// Short lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::AcquireStart => "acquire",
            EventKind::Admit => "admit",
            EventKind::Release => "release",
            EventKind::Timeout => "timeout",
            EventKind::PoisonRejected => "poison",
            EventKind::CycleAborted => "cycle_abort",
            EventKind::Blocked => "blocked",
            EventKind::UnlockUnderflow => "unlock_underflow",
        }
    }
}

/// Why (or whether) an acquisition waited.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum WaitCause {
    /// Not applicable (releases, underflow reports).
    None = 0,
    /// Admitted without observing any conflicting hold.
    Uncontended = 1,
    /// Blocked on (or rejected by) a conflicting hold.
    Conflict = 2,
    /// Rejected by instance poisoning.
    Poison = 3,
    /// Aborted by the deadlock watchdog.
    Deadlock = 4,
}

impl WaitCause {
    fn from_u8(v: u8) -> Option<WaitCause> {
        Some(match v {
            0 => WaitCause::None,
            1 => WaitCause::Uncontended,
            2 => WaitCause::Conflict,
            3 => WaitCause::Poison,
            4 => WaitCause::Deadlock,
            _ => return None,
        })
    }

    /// Short lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            WaitCause::None => "none",
            WaitCause::Uncontended => "uncontended",
            WaitCause::Conflict => "conflict",
            WaitCause::Poison => "poison",
            WaitCause::Deadlock => "deadlock",
        }
    }
}

/// One recorded lock-site event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Why the acquisition waited (or [`WaitCause::None`]).
    pub cause: WaitCause,
    /// Telemetry-local id of the recording thread.
    pub thread: u32,
    /// Transaction id ([`crate::txn::Txn::id`]); 0 when no transaction
    /// context was stamped.
    pub txn: u64,
    /// ADT instance id ([`crate::manager::SemLock::unique`]).
    pub instance: u64,
    /// The requested/held canonical mode id.
    pub mode: u32,
    /// Secondary mode ([`MODE_NONE`] unless `kind` is
    /// [`EventKind::Blocked`], where it is the conflicting held mode).
    pub other_mode: u32,
    /// Stable compiler-stamped lock-site id, or [`SITE_NONE`].
    pub site: u32,
    /// Nanoseconds since the telemetry epoch.
    pub t_ns: u64,
    /// For terminal events: nanoseconds spent waiting since acquire start.
    pub wait_ns: u64,
}

// ---------------------------------------------------------------------------
// Thread-local acquisition context
// ---------------------------------------------------------------------------

thread_local! {
    static CTX_TXN: Cell<u64> = const { Cell::new(0) };
    static CTX_SITE: Cell<u32> = const { Cell::new(SITE_NONE) };
}

/// Stamp the transaction id and lock-site id for the next acquisition or
/// release performed by this thread. The site is consumed (reset to
/// [`SITE_NONE`]) by [`take_context`] so it cannot leak onto an unrelated
/// later acquisition.
pub fn set_context(txn: u64, site: u32) {
    CTX_TXN.with(|c| c.set(txn));
    CTX_SITE.with(|c| c.set(site));
}

/// Stamp only the transaction id (keeps any pending site).
pub fn set_txn(txn: u64) {
    CTX_TXN.with(|c| c.set(txn));
}

/// Stamp only the pending lock-site id (keeps the transaction id).
pub fn set_site(site: u32) {
    CTX_SITE.with(|c| c.set(site));
}

/// Read and consume the pending context: returns `(txn, site)` and resets
/// the site to [`SITE_NONE`]. Called once per runtime lock/unlock entry
/// point.
pub fn take_context() -> (u64, u32) {
    let txn = CTX_TXN.with(|c| c.get());
    let site = CTX_SITE.with(|c| c.replace(SITE_NONE));
    (txn, site)
}

/// Read the pending context without consuming it.
pub fn context() -> (u64, u32) {
    (CTX_TXN.with(|c| c.get()), CTX_SITE.with(|c| c.get()))
}

// ---------------------------------------------------------------------------
// Per-thread seqlock rings
// ---------------------------------------------------------------------------

/// One ring slot: a seqlock sequence word plus the packed event words.
/// The sequence is odd while the (single) writer is mid-update; readers
/// retry/discard on a torn read. Atomics are used for the data words so
/// concurrent reads are defined behaviour — there is no ordering
/// requirement beyond the seq brackets.
struct Slot {
    seq: AtomicU32,
    words: [AtomicU64; 7],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU32::new(0),
            words: Default::default(),
        }
    }
}

fn pack(ev: &Event) -> [u64; 7] {
    [
        (ev.kind as u64) | ((ev.cause as u64) << 8) | ((ev.thread as u64) << 32),
        (ev.mode as u64) | ((ev.other_mode as u64) << 32),
        ev.site as u64,
        ev.txn,
        ev.instance,
        ev.t_ns,
        ev.wait_ns,
    ]
}

fn unpack(w: &[u64; 7]) -> Option<Event> {
    Some(Event {
        kind: EventKind::from_u8((w[0] & 0xff) as u8)?,
        cause: WaitCause::from_u8(((w[0] >> 8) & 0xff) as u8)?,
        thread: (w[0] >> 32) as u32,
        mode: w[1] as u32,
        other_mode: (w[1] >> 32) as u32,
        site: w[2] as u32,
        txn: w[3],
        instance: w[4],
        t_ns: w[5],
        wait_ns: w[6],
    })
}

/// The per-thread ring. `head` counts events ever written by this thread;
/// slot `head % capacity` is the next write position (capacity =
/// `slots.len()`, fixed at allocation by [`ring_capacity`]).
struct Shard {
    thread: u32,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Shard {
    fn new(thread: u32) -> Shard {
        Shard {
            thread,
            head: AtomicU64::new(0),
            slots: (0..ring_capacity()).map(|_| Slot::empty()).collect(),
        }
    }

    /// Single-writer append ([`reset`] is the only other head writer, and
    /// it requires quiescence).
    fn push(&self, ev: &Event) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) % self.slots.len()];
        let s = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(s.wrapping_add(1), Ordering::Release);
        let packed = pack(ev);
        for (w, v) in slot.words.iter().zip(packed) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(s.wrapping_add(2), Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Read every retained event in write order, skipping torn slots.
    fn drain_into(&self, out: &mut Vec<Event>) -> u64 {
        let h = self.head.load(Ordering::Acquire);
        let dropped = h.saturating_sub(self.slots.len() as u64);
        for i in dropped..h {
            let slot = &self.slots[(i as usize) % self.slots.len()];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                continue;
            }
            let mut w = [0u64; 7];
            for (dst, src) in w.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue;
            }
            if let Some(ev) = unpack(&w) {
                out.push(ev);
            }
        }
        dropped
    }
}

static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

fn registry() -> &'static Mutex<Vec<Arc<Shard>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static SHARD: OnceCell<Arc<Shard>> = const { OnceCell::new() };
}

fn with_shard(f: impl FnOnce(&Shard)) {
    SHARD.with(|cell| {
        let shard = cell.get_or_init(|| {
            let shard = Arc::new(Shard::new(NEXT_THREAD.fetch_add(1, Ordering::Relaxed)));
            registry().lock().push(shard.clone());
            shard
        });
        f(shard);
    });
}

/// Record one event into this thread's ring. The caller must have checked
/// [`enabled`]; `thread` and `t_ns` are filled in here.
#[allow(clippy::too_many_arguments)]
pub fn record(
    kind: EventKind,
    cause: WaitCause,
    txn: u64,
    site: u32,
    instance: u64,
    mode: u32,
    other_mode: u32,
    wait_ns: u64,
) {
    record_at(
        now_ns(),
        kind,
        cause,
        txn,
        site,
        instance,
        mode,
        other_mode,
        wait_ns,
    );
}

/// [`record`] with a caller-supplied timestamp, so a traced acquisition
/// path can stamp several events (e.g. `AcquireStart` + an uncontended
/// `Admit`) from a single clock read. [`snapshot`]'s sort is stable, so
/// events sharing a timestamp keep their recording order.
#[allow(clippy::too_many_arguments)]
pub fn record_at(
    t_ns: u64,
    kind: EventKind,
    cause: WaitCause,
    txn: u64,
    site: u32,
    instance: u64,
    mode: u32,
    other_mode: u32,
    wait_ns: u64,
) {
    with_shard(|shard| {
        shard.push(&Event {
            kind,
            cause,
            thread: shard.thread,
            txn,
            instance,
            mode,
            other_mode,
            site,
            t_ns,
            wait_ns,
        })
    });
}

/// Snapshot every thread's retained events, merged and sorted by
/// timestamp. Returns `(events, dropped)` where `dropped` counts events
/// lost to ring wrap-around since the last [`reset`].
///
/// Safe to call concurrently with writers (torn slots are discarded), but
/// a consistent, complete stream — e.g. for [`check_balanced`] — requires
/// the recording threads to be quiescent.
pub fn snapshot() -> (Vec<Event>, u64) {
    let shards = registry().lock();
    let mut out = Vec::new();
    let mut dropped = 0;
    for shard in shards.iter() {
        dropped += shard.drain_into(&mut out);
    }
    out.sort_by_key(|e| e.t_ns);
    (out, dropped)
}

/// Discard all recorded events and cycle records. **Requires quiescence**:
/// no thread may be concurrently recording (this is the one place a
/// non-owner writes a shard's head).
pub fn reset() {
    let shards = registry().lock();
    for shard in shards.iter() {
        shard.head.store(0, Ordering::SeqCst);
    }
    cycles_store().lock().clear();
    for c in [&RETRIES, &ESCALATIONS, &SHEDS, &EXHAUSTED] {
        c.store(0, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Cycle records (variable-length; rare, so a plain mutexed vec suffices)
// ---------------------------------------------------------------------------

/// A watchdog-detected waits-for cycle converted into an abort. Ring
/// events are fixed-size, so the variable-length member list lives here;
/// the matching ring event is the [`EventKind::CycleAborted`] terminal
/// with the same `(txn, instance, mode)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleRecord {
    /// The aborted (youngest) transaction.
    pub txn: u64,
    /// Instance the aborted transaction was waiting on.
    pub instance: u64,
    /// The requested mode.
    pub mode: u32,
    /// Stable lock-site id of the aborted acquisition, or [`SITE_NONE`].
    pub site: u32,
    /// Sorted transaction ids of the detected cycle (the
    /// [`crate::error::LockError::WouldDeadlock`] payload).
    pub members: Vec<u64>,
    /// Nanoseconds since the telemetry epoch.
    pub t_ns: u64,
}

fn cycles_store() -> &'static Mutex<Vec<CycleRecord>> {
    static CYCLES: OnceLock<Mutex<Vec<CycleRecord>>> = OnceLock::new();
    CYCLES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Record a deadlock-cycle abort (called by the watchdog path; caller must
/// have checked [`enabled`]).
pub fn record_cycle(txn: u64, instance: u64, mode: u32, site: u32, members: &[u64]) {
    cycles_store().lock().push(CycleRecord {
        txn,
        instance,
        mode,
        site,
        members: members.to_vec(),
        t_ns: now_ns(),
    });
}

/// All cycle records since the last [`reset`].
pub fn cycles() -> Vec<CycleRecord> {
    cycles_store().lock().clone()
}

// ---------------------------------------------------------------------------
// Balance checking
// ---------------------------------------------------------------------------

/// Verify the event-balance invariant over a quiescent snapshot: per
/// `(txn, instance, mode, site)`, acquire starts equal terminals
/// (admit/timeout/poison/cycle-abort) and releases equal admits.
pub fn check_balanced(events: &[Event]) -> Result<(), String> {
    #[derive(Default)]
    struct Counts {
        starts: u64,
        admits: u64,
        releases: u64,
        timeouts: u64,
        poisons: u64,
        aborts: u64,
    }
    let mut per_key: BTreeMap<(u64, u64, u32, u32), Counts> = BTreeMap::new();
    for ev in events {
        let c = per_key
            .entry((ev.txn, ev.instance, ev.mode, ev.site))
            .or_default();
        match ev.kind {
            EventKind::AcquireStart => c.starts += 1,
            EventKind::Admit => c.admits += 1,
            EventKind::Release => c.releases += 1,
            EventKind::Timeout => c.timeouts += 1,
            EventKind::PoisonRejected => c.poisons += 1,
            EventKind::CycleAborted => c.aborts += 1,
            EventKind::Blocked | EventKind::UnlockUnderflow => {}
        }
    }
    for (key, c) in &per_key {
        let terminals = c.admits + c.timeouts + c.poisons + c.aborts;
        if c.starts != terminals {
            return Err(format!(
                "unbalanced acquisitions for (txn={}, instance={}, mode={}, site={}): \
                 {} starts vs {} terminals ({} admits, {} timeouts, {} poisons, {} aborts)",
                key.0,
                key.1,
                key.2,
                key.3,
                c.starts,
                terminals,
                c.admits,
                c.timeouts,
                c.poisons,
                c.aborts
            ));
        }
        if c.releases != c.admits {
            return Err(format!(
                "unbalanced releases for (txn={}, instance={}, mode={}, site={}): \
                 {} releases vs {} admits",
                key.0, key.1, key.2, key.3, c.releases, c.admits
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Aggregated metrics
// ---------------------------------------------------------------------------

/// Number of log2 wait-time histogram buckets (bucket `i` holds waits in
/// `[2^(i-1), 2^i)` ns; bucket 0 holds zero-wait admissions).
pub const WAIT_BUCKETS: usize = 32;

/// The log2 histogram bucket for a wait of `ns` nanoseconds.
pub fn wait_bucket(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros() as usize).min(WAIT_BUCKETS - 1)
    }
}

/// Aggregated contention statistics for one `(site, mode)` pair.
#[derive(Clone, Debug, Default)]
pub struct SiteStats {
    /// Acquire starts.
    pub acquires: u64,
    /// Successful admissions.
    pub admits: u64,
    /// Releases.
    pub releases: u64,
    /// Deadline expiries.
    pub timeouts: u64,
    /// Poison rejections.
    pub poison_rejects: u64,
    /// Deadlock-cycle aborts.
    pub cycle_aborts: u64,
    /// Terminals whose cause was a conflicting hold.
    pub contended: u64,
    /// Total nanoseconds spent waiting across all terminals.
    pub total_wait_ns: u64,
    /// Maximum single wait in nanoseconds.
    pub max_wait_ns: u64,
    /// Log2 wait-time histogram over terminals (see [`wait_bucket`]).
    pub wait_hist: [u64; WAIT_BUCKETS],
}

/// Aggregated view of a telemetry snapshot: per-site/mode contention
/// metrics, the conflict-pair matrix and the cycle records.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Per `(site, mode)` statistics (site [`SITE_NONE`] collects
    /// acquisitions with no compiler-stamped site).
    pub per_site: BTreeMap<(u32, u32), SiteStats>,
    /// Conflict-pair matrix: `(requested mode, conflicting held mode)` →
    /// number of [`EventKind::Blocked`] observations.
    pub conflict_pairs: BTreeMap<(u32, u32), u64>,
    /// Deadlock-cycle aborts with member lists.
    pub cycles: Vec<CycleRecord>,
    /// Refused double releases ([`EventKind::UnlockUnderflow`]).
    pub unlock_underflows: u64,
    /// Events in the snapshot.
    pub total_events: u64,
    /// Events lost to ring wrap-around.
    pub dropped: u64,
}

impl Metrics {
    /// Aggregate the current global snapshot (see [`snapshot`]).
    pub fn collect() -> Metrics {
        let (events, dropped) = snapshot();
        Metrics::from_events(&events, cycles(), dropped)
    }

    /// Aggregate an explicit event stream.
    pub fn from_events(events: &[Event], cycles: Vec<CycleRecord>, dropped: u64) -> Metrics {
        let mut m = Metrics {
            cycles,
            dropped,
            total_events: events.len() as u64,
            ..Metrics::default()
        };
        for ev in events {
            if ev.kind == EventKind::Blocked {
                *m.conflict_pairs
                    .entry((ev.mode, ev.other_mode))
                    .or_insert(0) += 1;
                continue;
            }
            if ev.kind == EventKind::UnlockUnderflow {
                m.unlock_underflows += 1;
                continue;
            }
            let s = m.per_site.entry((ev.site, ev.mode)).or_default();
            let mut terminal = false;
            match ev.kind {
                EventKind::AcquireStart => s.acquires += 1,
                EventKind::Admit => {
                    s.admits += 1;
                    terminal = true;
                }
                EventKind::Release => s.releases += 1,
                EventKind::Timeout => {
                    s.timeouts += 1;
                    terminal = true;
                }
                EventKind::PoisonRejected => {
                    s.poison_rejects += 1;
                    terminal = true;
                }
                EventKind::CycleAborted => {
                    s.cycle_aborts += 1;
                    terminal = true;
                }
                EventKind::Blocked | EventKind::UnlockUnderflow => unreachable!(),
            }
            if terminal {
                if ev.cause == WaitCause::Conflict || ev.cause == WaitCause::Deadlock {
                    s.contended += 1;
                }
                s.total_wait_ns += ev.wait_ns;
                s.max_wait_ns = s.max_wait_ns.max(ev.wait_ns);
                s.wait_hist[wait_bucket(ev.wait_ns)] += 1;
            }
        }
        m
    }

    /// Render as a self-describing JSON object (no external dependencies;
    /// stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"semlock-telemetry/v1\",\n");
        out.push_str(&format!("  \"total_events\": {},\n", self.total_events));
        out.push_str(&format!("  \"dropped\": {},\n", self.dropped));
        out.push_str(&format!(
            "  \"unlock_underflows\": {},\n",
            self.unlock_underflows
        ));
        out.push_str("  \"sites\": [");
        for (i, ((site, mode), s)) in self.per_site.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let site_str = if *site == SITE_NONE {
                "null".to_string()
            } else {
                format!("{site}")
            };
            out.push_str(&format!(
                "\n    {{\"site\": {site_str}, \"mode\": {mode}, \"acquires\": {}, \
                 \"admits\": {}, \"releases\": {}, \"timeouts\": {}, \"poison_rejects\": {}, \
                 \"cycle_aborts\": {}, \"contended\": {}, \"total_wait_ns\": {}, \
                 \"max_wait_ns\": {}, \"wait_hist_log2\": {}}}",
                s.acquires,
                s.admits,
                s.releases,
                s.timeouts,
                s.poison_rejects,
                s.cycle_aborts,
                s.contended,
                s.total_wait_ns,
                s.max_wait_ns,
                json_u64_array(&s.wait_hist)
            ));
        }
        out.push_str("\n  ],\n  \"conflict_pairs\": [");
        for (i, ((req, held), n)) in self.conflict_pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"requested_mode\": {req}, \"held_mode\": {held}, \"count\": {n}}}"
            ));
        }
        out.push_str("\n  ],\n  \"cycles\": [");
        for (i, c) in self.cycles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let site_str = if c.site == SITE_NONE {
                "null".to_string()
            } else {
                format!("{}", c.site)
            };
            out.push_str(&format!(
                "\n    {{\"txn\": {}, \"instance\": {}, \"mode\": {}, \"site\": {site_str}, \
                 \"members\": {}, \"t_ns\": {}}}",
                c.txn,
                c.instance,
                c.mode,
                json_u64_array(&c.members),
                c.t_ns
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_u64_array(xs: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&x.to_string());
    }
    s.push(']');
    s
}

// ---------------------------------------------------------------------------
// Chrome-trace exporter
// ---------------------------------------------------------------------------

/// Export an event stream in the Chrome trace event format (load the
/// result in `chrome://tracing` or Perfetto). Wait intervals become
/// complete ("X") spans from acquire start to the terminal; hold intervals
/// span admit to release; blocked observations and underflows become
/// instant events.
pub fn chrome_trace(events: &[Event]) -> String {
    fn label(prefix: &str, ev: &Event) -> String {
        if ev.site == SITE_NONE {
            format!("{prefix} m{} #{}", ev.mode, ev.instance)
        } else {
            format!(
                "{prefix} site {:#010x} m{} #{}",
                ev.site, ev.mode, ev.instance
            )
        }
    }
    let mut spans: BTreeMap<(u32, u64, u64, u32), u64> = BTreeMap::new(); // wait starts
    let mut holds: BTreeMap<(u32, u64, u64, u32), u64> = BTreeMap::new(); // admit times
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    let mut first = true;
    let mut emit = |out: &mut String, body: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&body);
    };
    for ev in events {
        let key = (ev.thread, ev.txn, ev.instance, ev.mode);
        let ts = ev.t_ns as f64 / 1000.0;
        match ev.kind {
            EventKind::AcquireStart => {
                spans.insert(key, ev.t_ns);
            }
            EventKind::Admit
            | EventKind::Timeout
            | EventKind::PoisonRejected
            | EventKind::CycleAborted => {
                if let Some(start) = spans.remove(&key) {
                    let dur = ev.t_ns.saturating_sub(start) as f64 / 1000.0;
                    emit(
                        &mut out,
                        format!(
                            "{{\"name\": \"{}\", \"cat\": \"wait\", \"ph\": \"X\", \"pid\": 1, \
                             \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": \
                             {{\"outcome\": \"{}\", \"cause\": \"{}\", \"txn\": {}}}}}",
                            label("wait", ev),
                            ev.thread,
                            start as f64 / 1000.0,
                            dur,
                            ev.kind.name(),
                            ev.cause.name(),
                            ev.txn
                        ),
                    );
                }
                if ev.kind == EventKind::Admit {
                    holds.insert(key, ev.t_ns);
                }
            }
            EventKind::Release => {
                // The releasing thread may differ bookkeeping-wise only in
                // site (consumed at admit); match on (thread,txn,instance,mode).
                if let Some(admit) = holds.remove(&key) {
                    let dur = ev.t_ns.saturating_sub(admit) as f64 / 1000.0;
                    emit(
                        &mut out,
                        format!(
                            "{{\"name\": \"{}\", \"cat\": \"hold\", \"ph\": \"X\", \"pid\": 1, \
                             \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"txn\": {}}}}}",
                            label("hold", ev),
                            ev.thread,
                            admit as f64 / 1000.0,
                            dur,
                            ev.txn
                        ),
                    );
                }
            }
            EventKind::Blocked | EventKind::UnlockUnderflow => {
                emit(
                    &mut out,
                    format!(
                        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"i\", \"pid\": 1, \
                         \"tid\": {}, \"ts\": {:.3}, \"s\": \"t\", \"args\": {{\"txn\": {}, \
                         \"other_mode\": {}}}}}",
                        label(ev.kind.name(), ev),
                        ev.kind.name(),
                        ev.thread,
                        ts,
                        ev.txn,
                        ev.other_mode
                    ),
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global flag or reset global state.
    fn serial() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock()
    }

    fn ev(kind: EventKind, txn: u64, instance: u64, mode: u32, wait_ns: u64) -> Event {
        Event {
            kind,
            cause: WaitCause::Uncontended,
            thread: 0,
            txn,
            instance,
            mode,
            other_mode: MODE_NONE,
            site: 7,
            t_ns: 0,
            wait_ns,
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let e = Event {
            kind: EventKind::CycleAborted,
            cause: WaitCause::Deadlock,
            thread: 12,
            txn: u64::MAX - 3,
            instance: 999,
            mode: 41,
            other_mode: MODE_NONE,
            site: 0xdead_beef,
            t_ns: 123_456_789,
            wait_ns: 42,
        };
        let w = pack(&e);
        let d = unpack(&w).unwrap();
        assert_eq!(d.kind, e.kind);
        assert_eq!(d.cause, e.cause);
        assert_eq!(d.thread, e.thread);
        assert_eq!(d.txn, e.txn);
        assert_eq!(d.instance, e.instance);
        assert_eq!(d.mode, e.mode);
        assert_eq!(d.other_mode, e.other_mode);
        assert_eq!(d.site, e.site);
        assert_eq!(d.t_ns, e.t_ns);
        assert_eq!(d.wait_ns, e.wait_ns);
    }

    #[test]
    fn wait_bucket_is_log2() {
        assert_eq!(wait_bucket(0), 0);
        assert_eq!(wait_bucket(1), 1);
        assert_eq!(wait_bucket(2), 2);
        assert_eq!(wait_bucket(3), 2);
        assert_eq!(wait_bucket(1024), 11);
        assert_eq!(wait_bucket(u64::MAX), WAIT_BUCKETS - 1);
    }

    #[test]
    fn ring_wraps_and_counts_dropped() {
        let shard = Shard::new(999);
        let cap = ring_capacity();
        let total = cap + 100;
        for i in 0..total {
            shard.push(&ev(EventKind::Admit, i as u64, 1, 0, 0));
        }
        let mut out = Vec::new();
        let dropped = shard.drain_into(&mut out);
        assert_eq!(dropped, 100);
        assert_eq!(out.len(), cap);
        assert_eq!(out.first().unwrap().txn, 100);
        assert_eq!(out.last().unwrap().txn, total as u64 - 1);
    }

    #[test]
    fn balance_checker_accepts_and_rejects() {
        let ok = vec![
            ev(EventKind::AcquireStart, 1, 5, 0, 0),
            ev(EventKind::Admit, 1, 5, 0, 0),
            ev(EventKind::Release, 1, 5, 0, 0),
            ev(EventKind::AcquireStart, 2, 5, 0, 0),
            ev(EventKind::Timeout, 2, 5, 0, 10),
            ev(EventKind::Blocked, 2, 5, 0, 0), // outside the invariant
        ];
        check_balanced(&ok).unwrap();
        let missing_terminal = vec![ev(EventKind::AcquireStart, 1, 5, 0, 0)];
        assert!(check_balanced(&missing_terminal).is_err());
        let double_release = vec![
            ev(EventKind::AcquireStart, 1, 5, 0, 0),
            ev(EventKind::Admit, 1, 5, 0, 0),
            ev(EventKind::Release, 1, 5, 0, 0),
            ev(EventKind::Release, 1, 5, 0, 0),
        ];
        assert!(check_balanced(&double_release).is_err());
    }

    #[test]
    fn metrics_aggregate_histograms_and_conflicts() {
        let mut blocked = ev(EventKind::Blocked, 2, 5, 3, 0);
        blocked.other_mode = 9;
        let events = vec![
            ev(EventKind::AcquireStart, 1, 5, 3, 0),
            ev(EventKind::Admit, 1, 5, 3, 1500),
            ev(EventKind::Release, 1, 5, 3, 0),
            blocked,
        ];
        let m = Metrics::from_events(&events, Vec::new(), 2);
        let s = &m.per_site[&(7, 3)];
        assert_eq!(s.acquires, 1);
        assert_eq!(s.admits, 1);
        assert_eq!(s.releases, 1);
        assert_eq!(s.total_wait_ns, 1500);
        assert_eq!(s.wait_hist[wait_bucket(1500)], 1);
        assert_eq!(m.conflict_pairs[&(3, 9)], 1);
        assert_eq!(m.dropped, 2);
        let json = m.to_json();
        assert!(json.contains("\"schema\": \"semlock-telemetry/v1\""));
        assert!(json.contains("\"dropped\": 2"));
        assert!(json.contains("\"requested_mode\": 3"));
    }

    #[test]
    fn chrome_trace_pairs_wait_and_hold_spans() {
        let mut events = vec![
            ev(EventKind::AcquireStart, 1, 5, 3, 0),
            ev(EventKind::Admit, 1, 5, 3, 0),
            ev(EventKind::Release, 1, 5, 3, 0),
        ];
        events[0].t_ns = 1_000;
        events[1].t_ns = 3_000;
        events[2].t_ns = 9_000;
        let trace = chrome_trace(&events);
        assert!(trace.contains("\"cat\": \"wait\""));
        assert!(trace.contains("\"cat\": \"hold\""));
        assert!(trace.contains("\"dur\": 2.000"));
        assert!(trace.contains("\"dur\": 6.000"));
    }

    #[test]
    fn disabled_by_default_and_toggle_works() {
        let _g = serial();
        assert!(!enabled());
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
    }

    #[test]
    fn record_snapshot_reset_roundtrip() {
        let _g = serial();
        reset();
        record(
            EventKind::AcquireStart,
            WaitCause::Uncontended,
            77,
            3,
            123,
            1,
            MODE_NONE,
            0,
        );
        record(
            EventKind::Admit,
            WaitCause::Uncontended,
            77,
            3,
            123,
            1,
            MODE_NONE,
            0,
        );
        record_cycle(77, 123, 1, 3, &[42, 77]);
        let (events, dropped) = snapshot();
        assert_eq!(dropped, 0);
        let mine: Vec<_> = events.iter().filter(|e| e.txn == 77).collect();
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].kind, EventKind::AcquireStart);
        assert_eq!(mine[1].kind, EventKind::Admit);
        assert!(cycles().iter().any(|c| c.members == vec![42, 77]));
        reset();
        let (events, dropped) = snapshot();
        assert!(events.iter().all(|e| e.txn != 77));
        assert_eq!(dropped, 0);
        assert!(cycles().is_empty());
    }

    #[test]
    fn context_take_consumes_site_keeps_txn() {
        set_context(9, 4);
        assert_eq!(context(), (9, 4));
        assert_eq!(take_context(), (9, 4));
        assert_eq!(take_context(), (9, SITE_NONE));
        set_site(6);
        assert_eq!(context(), (9, 6));
        set_txn(2);
        assert_eq!(context(), (2, 6));
        let _ = take_context();
    }
}
