//! The unified acquisition request: one options struct behind which every
//! entry point — `lv`, `try_lv`, `lv_deadline`, `lv_timeout`, and the
//! standalone `SemLock` variants — is a thin wrapper.
//!
//! PRs 2–3 grew the acquisition surface to eight overlapping methods, each
//! hard-wiring one combination of wait budget and watchdog behaviour.
//! [`AcquireSpec`] names those axes explicitly:
//!
//! * **mode** — the locking mode to take (always required);
//! * **wait budget** — wait forever, wait until a deadline, or don't wait
//!   at all ([`WaitBudget`]);
//! * **watchdog** — whether a *bounded* wait registers with the deadlock
//!   watchdog while parked. Unbounded waits never register (exactly as
//!   `lv` never did): with no deadline there is no probe slice to register
//!   from, and opting a `Forever` wait into the watchdog would change
//!   `lv`'s semantics, which the wrappers must preserve.
//!
//! ```ignore
//! use semlock::{AcquireSpec, WaitBudget};
//! use std::time::Duration;
//!
//! let spec = AcquireSpec::new(mode).timeout(Duration::from_millis(50));
//! match txn.acquire(&lock, &spec) {
//!     Ok(()) => { /* section body */ }
//!     Err(e) => { /* timeout / poison / deadlock, all structured */ }
//! }
//! ```
//! (Snippet elided from doctests: `mode`, `txn` and `lock` come from a
//! synthesized table; see `Txn::acquire` for a runnable example.)

use crate::mode::ModeId;
use std::time::{Duration, Instant};

/// How long an acquisition is willing to wait for conflicting modes to
/// drain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum WaitBudget {
    /// Wait until admission is legal, however long that takes. This is the
    /// paper's semantics (`lv`) and the default.
    #[default]
    Forever,
    /// Wait until the given instant, then give up with
    /// [`crate::error::LockError::Timeout`].
    Until(Instant),
    /// Never wait: a conflicted admission fails immediately with a
    /// zero-wait [`crate::error::LockError::Timeout`] (`try_lv`).
    DontWait,
}

/// A complete description of one acquisition request. Build with
/// [`AcquireSpec::new`] and refine with the builder methods; the struct is
/// `#[non_exhaustive]`, so construct it through the builders rather than
/// literally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct AcquireSpec {
    /// The locking mode to acquire.
    pub mode: ModeId,
    /// The wait budget (default: [`WaitBudget::Forever`]).
    pub wait: WaitBudget,
    /// Whether a bounded wait registers with the deadlock watchdog while
    /// parked (default: `true`). Irrelevant — and ignored — for
    /// [`WaitBudget::Forever`] and [`WaitBudget::DontWait`], neither of
    /// which ever reaches a probe slice.
    pub watchdog: bool,
}

impl AcquireSpec {
    /// An unbounded acquisition of `mode` — equivalent to what `lv` does.
    pub fn new(mode: ModeId) -> AcquireSpec {
        AcquireSpec {
            mode,
            wait: WaitBudget::Forever,
            watchdog: true,
        }
    }

    /// Bound the wait by an absolute deadline.
    pub fn deadline(mut self, deadline: Instant) -> AcquireSpec {
        self.wait = WaitBudget::Until(deadline);
        self
    }

    /// Bound the wait by a duration from now.
    pub fn timeout(self, timeout: Duration) -> AcquireSpec {
        self.deadline(Instant::now() + timeout)
    }

    /// Refuse to wait at all (`try_lv`).
    pub fn no_wait(mut self) -> AcquireSpec {
        self.wait = WaitBudget::DontWait;
        self
    }

    /// Opt a bounded wait out of deadlock-watchdog registration. The wait
    /// still times out at its deadline; it just never participates in
    /// cycle detection (nor can it be chosen as a cycle's abort victim).
    pub fn no_watchdog(mut self) -> AcquireSpec {
        self.watchdog = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let m = ModeId(3);
        let s = AcquireSpec::new(m);
        assert_eq!(s.wait, WaitBudget::Forever);
        assert!(s.watchdog);

        let d = Instant::now() + Duration::from_secs(1);
        let s = AcquireSpec::new(m).deadline(d).no_watchdog();
        assert_eq!(s.wait, WaitBudget::Until(d));
        assert!(!s.watchdog);

        let s = AcquireSpec::new(m).no_wait();
        assert_eq!(s.wait, WaitBudget::DontWait);

        // timeout() is deadline() with a relative budget.
        let s = AcquireSpec::new(m).timeout(Duration::from_millis(10));
        assert!(matches!(s.wait, WaitBudget::Until(_)));
    }
}
