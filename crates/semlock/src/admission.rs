//! Pluggable admission backends behind one [`Admission`] trait.
//!
//! The paper's mode-table admission (counter layouts in [`crate::mech`])
//! is one point in a design space: Aksenov's *Semantic Lock* generalizes
//! admission to an operation **conflict graph**, subsuming mode tables as
//! the special case where the graph is derived from the commutativity
//! function F_c. This module factors the admission surface out of
//! [`Mech`] so alternative policies can be compared under identical
//! workloads, chaos soaks, and audit suites:
//!
//! | backend | representation | lock-free admission |
//! |---|---|---|
//! | `Wide` | per-mode counters under a mutex (Fig. 20) | no |
//! | `Packed` | one 64-bit word, ≤ 8 modes | yes |
//! | `Dwcas` | one 128-bit word, ≤ 16 modes | on `cmpxchg16b` hardware |
//! | `ConflictGraph` | per-mode counters + precomputed adjacency rows | no |
//! | `OptimisticHybrid` | bounded lock-free probes, then pessimistic parking | fast path only |
//!
//! Every backend carries the same proof obligations the model checker
//! establishes for the word layouts (see `crates/model`): **exclusivity**
//! (two conflicting modes are never held at once), **no lost wakeups**
//! (a release that leaves a waiter's conflict set clear eventually admits
//! it), and **release balance** (every admit is paired with exactly one
//! decrement; underflow is refused, never wrapped). The cross-backend
//! conformance suite in `tests/fastpath.rs` replays identical schedules
//! against all five and asserts outcome and statistics equality.
//!
//! Backends are selected with the `#[non_exhaustive]`
//! [`AdmissionBackend`] config on the [`crate::manager::SemLock`]
//! builders; the per-layout constructors remain available on [`Mech`]
//! for low-level tests and benches but are no longer the caller-facing
//! configuration surface.

use std::time::Instant;

use crate::mech::{
    ordering as ord, Acquire, ConflictSet, GroupRequest, Mech, MechLayout, MechStats, Wait,
    WaitStrategy, DWCAS_MODE_LIMIT, PACKED_MODE_LIMIT, PROBE_INTERVAL,
};
use crate::sync::{AtomicU32, Condvar, Mutex, Ordering};

/// The admission surface one partition's backend must provide: admit
/// (blocking, non-blocking, and bounded), release, and the diagnostics
/// the telemetry/chaos/audit layers consume.
///
/// Implementations must uphold the model-checked contract documented in
/// the [module docs](self): exclusivity, no lost wakeups, and release
/// balance. Statistics discipline is part of the contract too — [`lock`]
/// counts one acquisition (plus one contended acquisition if it waited),
/// [`try_lock`] counts an acquisition only on success, [`lock_deadline`]
/// counts per outcome (`Acquired` like `lock`, `TimedOut` one timeout,
/// `Abandoned` nothing), and a refused double release counts one
/// underflow — the retry-balance suites check these sums across
/// backends.
///
/// [`lock`]: Admission::lock
/// [`try_lock`]: Admission::try_lock
/// [`lock_deadline`]: Admission::lock_deadline
pub trait Admission: Send + Sync {
    /// Acquire the mode with local index `local`, blocking until no
    /// conflicting mode (per `cs`) is held. Returns whether the
    /// acquisition had to wait.
    fn lock(&self, local: u32, cs: ConflictSet<'_>) -> bool;

    /// Try to acquire without waiting; returns whether the mode was
    /// taken. A failed probe must never leave the backend in a state
    /// that redirects an unrelated release (see the `DontWait`
    /// conformance test).
    fn try_lock(&self, local: u32, cs: ConflictSet<'_>) -> bool;

    /// Bounded acquisition: like [`Admission::lock`] but gives up once
    /// `deadline` passes; `probe` is invoked roughly every
    /// [`PROBE_INTERVAL`] while waiting and may abandon the wait (the
    /// deadlock watchdog's hook).
    fn lock_deadline(
        &self,
        local: u32,
        cs: ConflictSet<'_>,
        deadline: Instant,
        probe: &mut dyn FnMut() -> Wait,
    ) -> Acquire;

    /// All-or-nothing batched admission of several modes of this
    /// partition. Never blocks. Returns whether the whole group was
    /// admitted; on `false` no member remains admitted.
    ///
    /// The default body is the loop fallback every backend is correct
    /// under: admit members in order with [`Admission::try_lock`], and on
    /// the first refusal roll the already-admitted prefix back in
    /// **reverse order** through [`Admission::unlock`] (so a rollback
    /// release still performs the backend's waiter handoff — no lost
    /// wakeups, no leaked partial admissions). The word layouts override
    /// it with a one-CAS-per-word fast path ([`Mech::try_lock_group`]);
    /// the conflict-graph backend with a single mutex-guarded
    /// check-all-then-admit-all.
    ///
    /// Statistics under the default body follow the per-member calls: a
    /// rolled-back member was counted by its successful `try_lock` (the
    /// word-layout override instead counts only admitted groups).
    fn lock_group(&self, members: &[GroupRequest<'_>]) -> bool {
        for (i, m) in members.iter().enumerate() {
            if !self.try_lock(m.local, m.cs) {
                for m2 in members[..i].iter().rev() {
                    let released = self.unlock(m2.local);
                    debug_assert!(released, "group rollback released an unheld mode");
                }
                return false;
            }
        }
        true
    }

    /// Release one hold on `local`. Returns `false` — leaving the
    /// counter untouched — if the release would underflow (double
    /// unlock); the caller must poison/report.
    #[must_use = "a false return means a refused double unlock; the caller must poison/report"]
    fn unlock(&self, local: u32) -> bool;

    /// Local indices among `conflicts` currently held — a racy sample
    /// for telemetry; never consulted for admission.
    fn held_conflicting(&self, conflicts: &[u32]) -> Vec<u32>;

    /// Current hold count of one mode (diagnostics / tests).
    fn count(&self, local: u32) -> u32;

    /// Sum of all mode hold counts (zero means quiescent).
    fn held_total(&self) -> u64;

    /// Contention statistics (see the trait docs for the counting
    /// discipline).
    fn stats(&self) -> &MechStats;

    /// Is a waiter currently published? Diagnostics only — racy.
    fn waiter_summary(&self) -> bool;

    /// Waiter-stack nodes currently alive; zero at quiescence. Backends
    /// without a waiter stack report zero.
    fn live_waiter_nodes(&self) -> u64;

    /// Stable snake_case backend name (matches
    /// [`AdmissionBackend::name`] for the word layouts; used by the
    /// bench tables).
    fn name(&self) -> &'static str;
}

/// Which admission backend a [`crate::manager::SemLock`] uses — the
/// caller-facing configuration surface replacing direct
/// [`MechLayout`] selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
#[non_exhaustive]
pub enum AdmissionBackend {
    /// Pick per partition: packed when the partition has at most
    /// [`PACKED_MODE_LIMIT`] modes, the 128-bit Dwcas word up to
    /// [`DWCAS_MODE_LIMIT`] modes when the hardware serves it lock-free,
    /// wide otherwise.
    #[default]
    Auto,
    /// The paper's Fig. 20 scheme: per-mode counters, check-then-increment
    /// under an internal mutex. Any mode count; never lock-free.
    Wide,
    /// All hold counts packed into one 64-bit word; admission is one CAS.
    /// Panics at [`SemLock`](crate::manager::SemLock) construction if any
    /// partition exceeds [`PACKED_MODE_LIMIT`] modes.
    Packed,
    /// All hold counts in one 128-bit word (cmpxchg16b; portable spinlock
    /// fallback without the `dwcas` feature). Panics at construction if
    /// any partition exceeds [`DWCAS_MODE_LIMIT`] modes.
    Dwcas,
    /// Aksenov-style conflict-graph admission: a mode is admitted iff no
    /// currently-held mode is adjacent to it in a conflict graph
    /// precomputed per partition from F_c — no packed mask, no
    /// mode-assignment step on the admit path. Any mode count; never
    /// lock-free.
    ConflictGraph,
    /// Optimistic try-then-block: a bounded number of lock-free admit
    /// probes (with spin backoff) over the `Auto` word layout, falling
    /// back to pessimistic parking once the budget is spent.
    OptimisticHybrid,
}

impl AdmissionBackend {
    /// The five concrete backends (everything except `Auto`), in the
    /// order the conformance suite and bench tables iterate them.
    pub const CONCRETE: [AdmissionBackend; 5] = [
        AdmissionBackend::Wide,
        AdmissionBackend::Packed,
        AdmissionBackend::Dwcas,
        AdmissionBackend::ConflictGraph,
        AdmissionBackend::OptimisticHybrid,
    ];

    /// Stable snake_case name (bench tables, `--backend` filters).
    pub fn name(self) -> &'static str {
        match self {
            AdmissionBackend::Auto => "auto",
            AdmissionBackend::Wide => "wide",
            AdmissionBackend::Packed => "packed",
            AdmissionBackend::Dwcas => "dwcas",
            AdmissionBackend::ConflictGraph => "conflict_graph",
            AdmissionBackend::OptimisticHybrid => "optimistic_hybrid",
        }
    }

    /// Parse a backend from its [`name`](AdmissionBackend::name).
    pub fn from_name(name: &str) -> Option<AdmissionBackend> {
        Some(match name {
            "auto" => AdmissionBackend::Auto,
            "wide" => AdmissionBackend::Wide,
            "packed" => AdmissionBackend::Packed,
            "dwcas" => AdmissionBackend::Dwcas,
            "conflict_graph" => AdmissionBackend::ConflictGraph,
            "optimistic_hybrid" => AdmissionBackend::OptimisticHybrid,
            _ => return None,
        })
    }

    /// Largest partition (mode count) this backend can serve, if bounded.
    pub fn max_modes(self) -> Option<usize> {
        match self {
            AdmissionBackend::Packed => Some(PACKED_MODE_LIMIT),
            AdmissionBackend::Dwcas => Some(DWCAS_MODE_LIMIT),
            _ => None,
        }
    }

    /// Is the uncontended admission path lock-free for a partition with
    /// `modes` modes on this build's hardware?
    pub fn lock_free(self, modes: usize) -> bool {
        match self {
            AdmissionBackend::Packed => true,
            AdmissionBackend::Dwcas => crate::dwcas::dwcas_available(),
            AdmissionBackend::Auto | AdmissionBackend::OptimisticHybrid => {
                modes <= PACKED_MODE_LIMIT
                    || (modes <= DWCAS_MODE_LIMIT && crate::dwcas::dwcas_available())
            }
            AdmissionBackend::Wide | AdmissionBackend::ConflictGraph => false,
        }
    }
}

impl std::fmt::Display for AdmissionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------
// Conflict-graph backend
// ---------------------------------------------------------------------

/// Aksenov-style conflict-graph admission for one partition.
///
/// A transcription of the wide (Fig. 20) protocol — the same internal
/// mutex, condvar, SeqCst store-buffering pairs, and audited ordering
/// sites (`wide.waiter.rmw`, `wide.conflict.load`, `wide.release.rmw`,
/// `wide.waiters.load`) — with one difference: the conflict check walks
/// the backend's **own precomputed adjacency row** for the requested
/// mode instead of the caller-supplied packed conflict set. This is the
/// conflict-graph generalization: admission needs only the graph, so a
/// future backend can admit operations that never went through mode
/// assignment at all. The `crates/model` transcription (`GraphMech`)
/// gives this path the same bounded-schedule proof as the word layouts.
pub struct ConflictGraphBackend {
    /// Per-mode hold counters (`C_l` of Fig. 20).
    counts: Box<[AtomicU32]>,
    /// `rows[l]` = local indices adjacent to mode `l` in the conflict
    /// graph (for F_c-derived graphs this equals
    /// [`crate::mode::ModePlacement::local_conflicts`]).
    rows: Box<[Box<[u32]>]>,
    /// Serializes check-then-increment admissions and waiter parking.
    internal: Mutex<()>,
    /// Parked waiters (blocking strategy).
    cond: Condvar,
    /// Published waiter count — SeqCst store-buffering pair with the
    /// release decrement, exactly as in the wide layout.
    waiters: AtomicU32,
    strategy: WaitStrategy,
    stats: MechStats,
}

impl ConflictGraphBackend {
    /// Build a backend from per-mode adjacency rows (`rows[l]` lists the
    /// locals mode `l` conflicts with). The graph must be symmetric —
    /// exclusivity relies on both endpoints of a conflict edge checking
    /// each other.
    ///
    /// # Panics
    /// If a row references a local index out of range, or the graph is
    /// not symmetric.
    pub fn new(rows: Vec<Vec<u32>>, strategy: WaitStrategy) -> ConflictGraphBackend {
        let n = rows.len();
        for (l, row) in rows.iter().enumerate() {
            for &c in row {
                assert!(
                    (c as usize) < n,
                    "conflict row {l} references out-of-range mode {c}"
                );
                assert!(
                    rows[c as usize].contains(&(l as u32)),
                    "conflict graph is not symmetric: {l} -> {c} but not {c} -> {l}"
                );
            }
        }
        ConflictGraphBackend {
            counts: (0..n).map(|_| AtomicU32::new(0)).collect(),
            rows: rows.into_iter().map(|r| r.into_boxed_slice()).collect(),
            internal: Mutex::new(()),
            cond: Condvar::new(),
            waiters: AtomicU32::new(0),
            strategy,
            stats: MechStats::default(),
        }
    }

    /// Is any mode adjacent to `local` currently held? Ordering: SeqCst —
    /// the same store-buffering argument as the wide layout's
    /// `conflicted_wide` (waiter registers then loads counts; releaser
    /// decrements then loads waiters).
    #[inline]
    fn conflicted(&self, local: u32) -> bool {
        self.rows[local as usize]
            .iter()
            .any(|&c| self.counts[c as usize].load(ord::WIDE_CONFLICT_LOAD) > 0)
    }
}

impl Admission for ConflictGraphBackend {
    fn lock(&self, local: u32, _cs: ConflictSet<'_>) -> bool {
        let waited = match self.strategy {
            WaitStrategy::Block => {
                let mut waited = false;
                let mut guard = self.internal.lock();
                loop {
                    // Register as a waiter *before* the check — see the
                    // wide arm of `Mech::lock_raw`. (Audited:
                    // `wide.waiter.rmw`.)
                    self.waiters.fetch_add(1, ord::WIDE_WAITER_RMW);
                    if !self.conflicted(local) {
                        self.waiters.fetch_sub(1, ord::WIDE_WAITER_RMW);
                        break;
                    }
                    waited = true;
                    self.cond.wait(&mut guard);
                    self.waiters.fetch_sub(1, ord::WIDE_WAITER_RMW);
                }
                // Ordering: Relaxed — published to admitters by the
                // internal mutex, to releasers by the atomic RMW in
                // `unlock` (as in the wide layout).
                self.counts[local as usize].fetch_add(1, Ordering::Relaxed);
                drop(guard);
                waited
            }
            WaitStrategy::Spin => {
                let mut waited = false;
                loop {
                    // Optimistic pre-check outside the internal lock
                    // (Fig. 20 lines 3–4).
                    while self.conflicted(local) {
                        waited = true;
                        std::hint::spin_loop();
                    }
                    let guard = self.internal.lock();
                    if !self.conflicted(local) {
                        self.counts[local as usize].fetch_add(1, Ordering::Relaxed);
                        drop(guard);
                        break;
                    }
                    drop(guard);
                }
                waited
            }
        };
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        if waited {
            self.stats.contended.fetch_add(1, Ordering::Relaxed);
        }
        waited
    }

    fn try_lock(&self, local: u32, _cs: ConflictSet<'_>) -> bool {
        let guard = self.internal.lock();
        if self.conflicted(local) {
            drop(guard);
            false
        } else {
            self.counts[local as usize].fetch_add(1, Ordering::Relaxed);
            drop(guard);
            self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
            true
        }
    }

    fn lock_deadline(
        &self,
        local: u32,
        _cs: ConflictSet<'_>,
        deadline: Instant,
        probe: &mut dyn FnMut() -> Wait,
    ) -> Acquire {
        let mut waited = false;
        let outcome = match self.strategy {
            WaitStrategy::Block => {
                if Instant::now() >= deadline {
                    // Already-expired deadline: one mutex-protected admit
                    // try, never a waiter registration (mirrors the wide
                    // arm of `Mech::lock_deadline_raw`).
                    let guard = self.internal.lock();
                    if !self.conflicted(local) {
                        self.counts[local as usize].fetch_add(1, Ordering::Relaxed);
                        drop(guard);
                        Acquire::Acquired
                    } else {
                        drop(guard);
                        Acquire::TimedOut
                    }
                } else {
                    let mut guard = self.internal.lock();
                    loop {
                        // (Audited: `wide.waiter.rmw`.)
                        self.waiters.fetch_add(1, ord::WIDE_WAITER_RMW);
                        if !self.conflicted(local) {
                            self.waiters.fetch_sub(1, ord::WIDE_WAITER_RMW);
                            self.counts[local as usize].fetch_add(1, Ordering::Relaxed);
                            break Acquire::Acquired;
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            self.waiters.fetch_sub(1, ord::WIDE_WAITER_RMW);
                            break Acquire::TimedOut;
                        }
                        waited = true;
                        let slice = PROBE_INTERVAL.min(deadline - now);
                        self.cond.wait_for(&mut guard, slice);
                        self.waiters.fetch_sub(1, ord::WIDE_WAITER_RMW);
                        // Deadline before probe, with a final admit try
                        // under `internal` — admission wins over an
                        // expired deadline.
                        if Instant::now() >= deadline {
                            break if !self.conflicted(local) {
                                self.counts[local as usize].fetch_add(1, Ordering::Relaxed);
                                Acquire::Acquired
                            } else {
                                Acquire::TimedOut
                            };
                        }
                        if probe() == Wait::Abandon {
                            break Acquire::Abandoned;
                        }
                    }
                }
            }
            WaitStrategy::Spin => 'outer: loop {
                let mut backoff: u32 = 1;
                let mut next_probe = Instant::now() + PROBE_INTERVAL;
                while self.conflicted(local) {
                    waited = true;
                    let now = Instant::now();
                    if now >= deadline {
                        break 'outer Acquire::TimedOut;
                    }
                    for _ in 0..backoff {
                        std::hint::spin_loop();
                    }
                    if backoff < 1 << 12 {
                        backoff <<= 1;
                    } else {
                        std::thread::yield_now();
                    }
                    if now >= next_probe {
                        if probe() == Wait::Abandon {
                            break 'outer Acquire::Abandoned;
                        }
                        next_probe = now + PROBE_INTERVAL;
                    }
                }
                let guard = self.internal.lock();
                if !self.conflicted(local) {
                    self.counts[local as usize].fetch_add(1, Ordering::Relaxed);
                    drop(guard);
                    break Acquire::Acquired;
                }
                drop(guard);
            },
        };
        match outcome {
            Acquire::Acquired => {
                self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
                if waited {
                    self.stats.contended.fetch_add(1, Ordering::Relaxed);
                }
            }
            Acquire::TimedOut => {
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            Acquire::Abandoned => {}
        }
        outcome
    }

    fn lock_group(&self, members: &[GroupRequest<'_>]) -> bool {
        // One mutex-guarded check-all-then-admit-all: the graph backend's
        // admission is already serialized by `internal`, so the batched
        // form is genuinely atomic — no rollback path needed.
        let guard = self.internal.lock();
        if members.iter().any(|m| self.conflicted(m.local)) {
            drop(guard);
            return false;
        }
        // A member adjacent to another member would self-exclude: the
        // check above ran against pre-admission counts, so refuse such
        // groups explicitly (mirrors the word layouts' sequential
        // fallback, which refuses them through its per-member checks).
        let mutual = members.iter().enumerate().any(|(i, a)| {
            members
                .iter()
                .enumerate()
                .any(|(j, b)| i != j && self.rows[a.local as usize].contains(&b.local))
        });
        if mutual {
            drop(guard);
            return false;
        }
        for m in members {
            self.counts[m.local as usize].fetch_add(1, Ordering::Relaxed);
        }
        drop(guard);
        self.stats
            .acquisitions
            .fetch_add(members.len() as u64, Ordering::Relaxed);
        true
    }

    fn unlock(&self, local: u32) -> bool {
        // Checked decrement via CAS — a double unlock is refused without
        // publishing a transient wrapped value (see `Mech::unlock`'s
        // wide arm for the history behind this shape).
        let c = &self.counts[local as usize];
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                self.stats.underflows.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            // Ordering: SeqCst — first half of the store-buffering pair
            // with the `waiters` load below. (Audited: `wide.release.rmw`.)
            match c.compare_exchange_weak(cur, cur - 1, ord::WIDE_RELEASE_RMW, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        // Ordering: SeqCst — second half of the store-buffering pair.
        // (Audited: `wide.waiters.load`.)
        if self.waiters.load(ord::WIDE_WAITERS_LOAD) > 0 {
            let _g = self.internal.lock();
            self.cond.notify_all();
        }
        true
    }

    fn held_conflicting(&self, conflicts: &[u32]) -> Vec<u32> {
        conflicts
            .iter()
            .copied()
            .filter(|&c| self.counts[c as usize].load(Ordering::Relaxed) > 0)
            .collect()
    }

    fn count(&self, local: u32) -> u32 {
        self.counts[local as usize].load(Ordering::Acquire)
    }

    fn held_total(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Acquire) as u64)
            .sum()
    }

    fn stats(&self) -> &MechStats {
        &self.stats
    }

    fn waiter_summary(&self) -> bool {
        self.waiters.load(Ordering::Relaxed) > 0
    }

    fn live_waiter_nodes(&self) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "conflict_graph"
    }
}

// ---------------------------------------------------------------------
// Optimistic try-then-block hybrid
// ---------------------------------------------------------------------

/// How many lock-free admit probes [`OptimisticHybridBackend`] spends
/// before falling back to pessimistic parking.
pub const OPTIMISTIC_PROBES: u32 = 32;

/// Optimistic try-then-block admission: up to a bounded number of
/// lock-free probes (each exactly the side-effect-free failed-CAS probe
/// of the word layouts, with exponential spin backoff in between), then
/// the pessimistic blocking path of the underlying `Auto` word layout.
///
/// Under short conflicts this admits without ever parking — the common
/// case the paper's closed-loop benchmarks produce — while long
/// conflicts degrade to exactly the model-checked parking protocol.
/// Statistics count each composite acquisition once: any failed probe
/// marks the acquisition contended, and the inner layout's counters are
/// the backend's counters (there is no second ledger to reconcile).
pub struct OptimisticHybridBackend {
    /// The word-layout mechanism the probes and the fallback share.
    inner: Mech,
    /// Probe budget (≥ 1).
    probes: u32,
}

impl OptimisticHybridBackend {
    /// Build a hybrid over the `Auto` word layout for a partition with
    /// `modes` modes, with the default [`OPTIMISTIC_PROBES`] budget.
    pub fn new(modes: usize, strategy: WaitStrategy) -> OptimisticHybridBackend {
        OptimisticHybridBackend::with_probes(modes, strategy, OPTIMISTIC_PROBES)
    }

    /// Build with an explicit probe budget (clamped to at least one).
    pub fn with_probes(
        modes: usize,
        strategy: WaitStrategy,
        probes: u32,
    ) -> OptimisticHybridBackend {
        OptimisticHybridBackend {
            inner: Mech::with_layout(modes, strategy, MechLayout::Auto),
            probes: probes.max(1),
        }
    }
}

impl Admission for OptimisticHybridBackend {
    fn lock(&self, local: u32, cs: ConflictSet<'_>) -> bool {
        let mut waited = false;
        let mut backoff: u32 = 1;
        for _ in 0..self.probes {
            if self.inner.try_lock_raw(local, cs) {
                self.inner.note_acquired(waited);
                return waited;
            }
            waited = true;
            for _ in 0..backoff {
                std::hint::spin_loop();
            }
            if backoff < 1 << 6 {
                backoff <<= 1;
            }
        }
        // Budget spent: park pessimistically. The composite acquisition
        // definitely waited, whatever the inner path reports.
        self.inner.lock_raw(local, cs);
        self.inner.note_acquired(true);
        true
    }

    fn try_lock(&self, local: u32, cs: ConflictSet<'_>) -> bool {
        // A `DontWait` probe stays a single probe — no retry budget, so
        // it remains side-effect-free on failure like the word layouts.
        self.inner.try_lock(local, cs)
    }

    fn lock_group(&self, members: &[GroupRequest<'_>]) -> bool {
        // Group admission stays a single combined probe over the inner
        // word — no retry budget, as with `try_lock`.
        self.inner.try_lock_group(members)
    }

    fn lock_deadline(
        &self,
        local: u32,
        cs: ConflictSet<'_>,
        deadline: Instant,
        probe: &mut dyn FnMut() -> Wait,
    ) -> Acquire {
        let mut waited = false;
        let mut backoff: u32 = 1;
        for _ in 0..self.probes {
            if self.inner.try_lock_raw(local, cs) {
                self.inner.note_outcome(Acquire::Acquired, waited);
                return Acquire::Acquired;
            }
            waited = true;
            if Instant::now() >= deadline {
                self.inner.note_outcome(Acquire::TimedOut, waited);
                return Acquire::TimedOut;
            }
            for _ in 0..backoff {
                std::hint::spin_loop();
            }
            if backoff < 1 << 6 {
                backoff <<= 1;
            }
        }
        let outcome = self
            .inner
            .lock_deadline_raw(local, cs, deadline, probe, &mut waited);
        self.inner.note_outcome(outcome, waited);
        outcome
    }

    fn unlock(&self, local: u32) -> bool {
        self.inner.unlock(local)
    }

    fn held_conflicting(&self, conflicts: &[u32]) -> Vec<u32> {
        self.inner.held_conflicting(conflicts)
    }

    fn count(&self, local: u32) -> u32 {
        self.inner.count(local)
    }

    fn held_total(&self) -> u64 {
        self.inner.held_total()
    }

    fn stats(&self) -> &MechStats {
        self.inner.stats()
    }

    fn waiter_summary(&self) -> bool {
        self.inner.waiter_summary()
    }

    fn live_waiter_nodes(&self) -> u64 {
        self.inner.live_waiter_nodes()
    }

    fn name(&self) -> &'static str {
        "optimistic_hybrid"
    }
}

// ---------------------------------------------------------------------
// Word layouts
// ---------------------------------------------------------------------

impl Admission for Mech {
    fn lock(&self, local: u32, cs: ConflictSet<'_>) -> bool {
        Mech::lock(self, local, cs)
    }

    fn try_lock(&self, local: u32, cs: ConflictSet<'_>) -> bool {
        Mech::try_lock(self, local, cs)
    }

    fn lock_group(&self, members: &[GroupRequest<'_>]) -> bool {
        Mech::try_lock_group(self, members)
    }

    fn lock_deadline(
        &self,
        local: u32,
        cs: ConflictSet<'_>,
        deadline: Instant,
        probe: &mut dyn FnMut() -> Wait,
    ) -> Acquire {
        Mech::lock_deadline(self, local, cs, deadline, probe)
    }

    fn unlock(&self, local: u32) -> bool {
        Mech::unlock(self, local)
    }

    fn held_conflicting(&self, conflicts: &[u32]) -> Vec<u32> {
        Mech::held_conflicting(self, conflicts)
    }

    fn count(&self, local: u32) -> u32 {
        Mech::count(self, local)
    }

    fn held_total(&self) -> u64 {
        Mech::held_total(self)
    }

    fn stats(&self) -> &MechStats {
        Mech::stats(self)
    }

    fn waiter_summary(&self) -> bool {
        Mech::waiter_summary(self)
    }

    fn live_waiter_nodes(&self) -> u64 {
        Mech::live_waiter_nodes(self)
    }

    fn name(&self) -> &'static str {
        match self.layout() {
            MechLayout::Packed => "packed",
            MechLayout::Dwcas => "dwcas",
            _ => "wide",
        }
    }
}

// ---------------------------------------------------------------------
// Static dispatch for the manager's hot path
// ---------------------------------------------------------------------

/// The backend of one partition, statically dispatched. The manager's
/// admission fast path (one CAS on packed) must not pay a vtable call,
/// so [`crate::manager::SemLock`] stores this enum rather than
/// `Box<dyn Admission>` — the match compiles to a three-way branch the
/// predictor resolves once per lock site.
pub(crate) enum AnyBackend {
    /// One of the three word/counter layouts ([`MechLayout`]).
    Word(Mech),
    /// Conflict-graph admission.
    Graph(ConflictGraphBackend),
    /// Optimistic try-then-block hybrid.
    Hybrid(OptimisticHybridBackend),
}

macro_rules! delegate {
    ($self:ident, $b:ident => $body:expr) => {
        match $self {
            AnyBackend::Word($b) => $body,
            AnyBackend::Graph($b) => $body,
            AnyBackend::Hybrid($b) => $body,
        }
    };
}

impl Admission for AnyBackend {
    #[inline]
    fn lock(&self, local: u32, cs: ConflictSet<'_>) -> bool {
        delegate!(self, b => Admission::lock(b, local, cs))
    }

    #[inline]
    fn try_lock(&self, local: u32, cs: ConflictSet<'_>) -> bool {
        delegate!(self, b => Admission::try_lock(b, local, cs))
    }

    #[inline]
    fn lock_group(&self, members: &[GroupRequest<'_>]) -> bool {
        delegate!(self, b => Admission::lock_group(b, members))
    }

    #[inline]
    fn lock_deadline(
        &self,
        local: u32,
        cs: ConflictSet<'_>,
        deadline: Instant,
        probe: &mut dyn FnMut() -> Wait,
    ) -> Acquire {
        delegate!(self, b => Admission::lock_deadline(b, local, cs, deadline, probe))
    }

    #[inline]
    fn unlock(&self, local: u32) -> bool {
        delegate!(self, b => Admission::unlock(b, local))
    }

    fn held_conflicting(&self, conflicts: &[u32]) -> Vec<u32> {
        delegate!(self, b => Admission::held_conflicting(b, conflicts))
    }

    #[inline]
    fn count(&self, local: u32) -> u32 {
        delegate!(self, b => Admission::count(b, local))
    }

    #[inline]
    fn held_total(&self) -> u64 {
        delegate!(self, b => Admission::held_total(b))
    }

    #[inline]
    fn stats(&self) -> &MechStats {
        delegate!(self, b => Admission::stats(b))
    }

    fn waiter_summary(&self) -> bool {
        delegate!(self, b => Admission::waiter_summary(b))
    }

    fn live_waiter_nodes(&self) -> u64 {
        delegate!(self, b => Admission::live_waiter_nodes(b))
    }

    fn name(&self) -> &'static str {
        delegate!(self, b => Admission::name(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    /// Two modes that conflict with each other but not themselves.
    fn cross_rows() -> Vec<Vec<u32>> {
        vec![vec![1], vec![0]]
    }

    #[test]
    fn graph_admits_per_adjacency() {
        let g = ConflictGraphBackend::new(cross_rows(), WaitStrategy::Block);
        let cs = ConflictSet::new(&[]);
        // Self-compatible: many holds of mode 0.
        assert!(g.try_lock(0, cs));
        assert!(g.try_lock(0, cs));
        // Mode 1 is adjacent to the held mode 0.
        assert!(!g.try_lock(1, cs));
        assert!(g.unlock(0));
        assert!(!g.try_lock(1, cs));
        assert!(g.unlock(0));
        assert!(g.try_lock(1, cs));
        assert!(g.unlock(1));
        assert_eq!(g.held_total(), 0);
        assert_eq!(g.stats().acquisitions.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn graph_refuses_underflow() {
        let g = ConflictGraphBackend::new(cross_rows(), WaitStrategy::Block);
        assert!(!g.unlock(0));
        assert_eq!(g.stats().underflows.load(Ordering::Relaxed), 1);
        assert_eq!(g.count(0), 0);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn graph_rejects_asymmetric_rows() {
        let _ = ConflictGraphBackend::new(vec![vec![1], vec![]], WaitStrategy::Block);
    }

    #[test]
    fn graph_release_wakes_blocked_waiter() {
        let g = Arc::new(ConflictGraphBackend::new(cross_rows(), WaitStrategy::Block));
        let cs = ConflictSet::new(&[]);
        assert!(g.try_lock(0, cs));
        let g2 = Arc::clone(&g);
        let waiter = std::thread::spawn(move || {
            let waited = g2.lock(1, ConflictSet::new(&[]));
            assert!(g2.unlock(1));
            waited
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(g.unlock(0));
        assert!(waiter.join().unwrap(), "waiter should have parked");
        assert_eq!(g.held_total(), 0);
        assert!(!g.waiter_summary());
    }

    #[test]
    fn hybrid_probes_then_parks() {
        let locals = [[1u32], [0u32]];
        let h = Arc::new(OptimisticHybridBackend::with_probes(
            2,
            WaitStrategy::Block,
            4,
        ));
        assert!(h.try_lock(0, ConflictSet::new(&locals[0])));
        let h2 = Arc::clone(&h);
        let waiter = std::thread::spawn(move || {
            let locals = [[1u32], [0u32]];
            let waited = h2.lock(1, ConflictSet::new(&locals[1]));
            assert!(h2.unlock(1));
            waited
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(h.unlock(0));
        assert!(waiter.join().unwrap());
        assert_eq!(h.held_total(), 0);
        assert_eq!(h.stats().acquisitions.load(Ordering::Relaxed), 2);
        assert_eq!(h.stats().contended.load(Ordering::Relaxed), 1);
        assert_eq!(h.live_waiter_nodes(), 0);
    }

    #[test]
    fn hybrid_uncontended_is_one_probe() {
        let locals = [[0u32]];
        let h = OptimisticHybridBackend::new(1, WaitStrategy::Block);
        assert!(!h.lock(0, ConflictSet::new(&locals[0])));
        assert!(h.unlock(0));
        assert_eq!(h.stats().contended.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn hybrid_expired_deadline_matches_word_semantics() {
        let locals = [[1u32], [0u32]];
        let h = OptimisticHybridBackend::new(2, WaitStrategy::Block);
        let expired = Instant::now() - Duration::from_millis(1);
        // Admissible mode wins over the expired deadline.
        assert_eq!(
            h.lock_deadline(0, ConflictSet::new(&locals[0]), expired, &mut || {
                Wait::Continue
            }),
            Acquire::Acquired
        );
        // Conflicting mode times out without parking.
        assert_eq!(
            h.lock_deadline(1, ConflictSet::new(&locals[1]), expired, &mut || {
                Wait::Continue
            }),
            Acquire::TimedOut
        );
        assert!(h.unlock(0));
        assert_eq!(h.stats().timeouts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn backend_names_round_trip() {
        for b in AdmissionBackend::CONCRETE {
            assert_eq!(AdmissionBackend::from_name(b.name()), Some(b));
        }
        assert_eq!(
            AdmissionBackend::from_name("auto"),
            Some(AdmissionBackend::Auto)
        );
        assert_eq!(AdmissionBackend::from_name("bogus"), None);
    }

    #[test]
    fn backend_mode_limits_and_lock_freedom() {
        assert_eq!(
            AdmissionBackend::Packed.max_modes(),
            Some(PACKED_MODE_LIMIT)
        );
        assert_eq!(AdmissionBackend::Dwcas.max_modes(), Some(DWCAS_MODE_LIMIT));
        assert_eq!(AdmissionBackend::ConflictGraph.max_modes(), None);
        assert!(AdmissionBackend::Packed.lock_free(8));
        assert!(!AdmissionBackend::Wide.lock_free(2));
        assert!(!AdmissionBackend::ConflictGraph.lock_free(2));
        assert!(AdmissionBackend::Auto.lock_free(8));
    }
}
