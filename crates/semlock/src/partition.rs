//! Union–find used to partition locking modes into independent mechanisms
//! (§5.2, *Lock Partitioning*).
//!
//! Two modes must share a locking mechanism iff they are connected by a
//! chain of conflicts; the connected components of the conflict graph are
//! exactly the maximal partition the paper describes (every mode in one
//! component commutes with every mode in any other component).

/// A small path-halving, union-by-size union–find over `0..n`.
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&mut self) -> usize {
        (0..self.len()).filter(|&i| self.find(i) == i).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(1, 2));
        assert!(uf.same(0, 3));
        assert_eq!(uf.set_count(), 3); // {0,1,2,3}, {4}, {5}
    }

    #[test]
    fn chain_of_unions() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.same(0, 99));
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
