//! ADT schemas: the static shape (API) of an abstract data type.
//!
//! An ADT (§2.1) consists statically of an interface — a set of method
//! signatures — plus a linearizable implementation. The semantic-locking
//! machinery only needs the interface: method names and arities, which
//! symbolic operations, commutativity specifications, and locking modes all
//! refer to by index.

use std::fmt;
use std::sync::Arc;

/// Index of a method within an [`AdtSchema`].
pub type MethodIdx = usize;

/// A method signature: a name and the number of value arguments
/// (not counting the receiver ADT instance).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodSig {
    /// Method name, e.g. `"add"`.
    pub name: String,
    /// Number of arguments, e.g. 1 for `add(v)`.
    pub arity: usize,
}

/// The static interface of an ADT class.
#[derive(Debug, PartialEq, Eq)]
pub struct AdtSchema {
    name: String,
    methods: Vec<MethodSig>,
}

impl AdtSchema {
    /// Start building a schema for an ADT class with the given name.
    pub fn builder(name: impl Into<String>) -> AdtSchemaBuilder {
        AdtSchemaBuilder {
            name: name.into(),
            methods: Vec::new(),
        }
    }

    /// The class name (e.g. `"Set"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All method signatures, in declaration order.
    pub fn methods(&self) -> &[MethodSig] {
        &self.methods
    }

    /// Number of methods in the interface.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Look up a method index by name. Panics if absent — schema authors
    /// control both sides, so a miss is a programming error.
    pub fn method(&self, name: &str) -> MethodIdx {
        self.try_method(name)
            .unwrap_or_else(|| panic!("ADT {} has no method named {name}", self.name))
    }

    /// Look up a method index by name.
    pub fn try_method(&self, name: &str) -> Option<MethodIdx> {
        self.methods.iter().position(|m| m.name == name)
    }

    /// Signature of the method at `idx`.
    pub fn sig(&self, idx: MethodIdx) -> &MethodSig {
        &self.methods[idx]
    }
}

impl fmt::Display for AdtSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {{ ", self.name)?;
        for (i, m) in self.methods.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", m.name, m.arity)?;
        }
        write!(f, " }}")
    }
}

/// Builder for [`AdtSchema`].
pub struct AdtSchemaBuilder {
    name: String,
    methods: Vec<MethodSig>,
}

impl AdtSchemaBuilder {
    /// Declare a method with the given name and arity.
    pub fn method(mut self, name: impl Into<String>, arity: usize) -> Self {
        let name = name.into();
        assert!(
            !self.methods.iter().any(|m| m.name == name),
            "duplicate method {name} in ADT {}",
            self.name
        );
        self.methods.push(MethodSig { name, arity });
        self
    }

    /// Finish, producing a shared schema.
    pub fn build(self) -> Arc<AdtSchema> {
        Arc::new(AdtSchema {
            name: self.name,
            methods: self.methods,
        })
    }
}

/// The Set ADT schema of Fig. 3(a), used pervasively in tests and docs.
pub fn set_schema() -> Arc<AdtSchema> {
    AdtSchema::builder("Set")
        .method("add", 1)
        .method("remove", 1)
        .method("contains", 1)
        .method("size", 0)
        .method("clear", 0)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = set_schema();
        assert_eq!(s.name(), "Set");
        assert_eq!(s.method_count(), 5);
        assert_eq!(s.method("add"), 0);
        assert_eq!(s.method("clear"), 4);
        assert_eq!(s.sig(s.method("add")).arity, 1);
        assert_eq!(s.sig(s.method("size")).arity, 0);
        assert!(s.try_method("frobnicate").is_none());
    }

    #[test]
    #[should_panic(expected = "no method named")]
    fn missing_method_panics() {
        set_schema().method("nope");
    }

    #[test]
    #[should_panic(expected = "duplicate method")]
    fn duplicate_method_panics() {
        let _ = AdtSchema::builder("X")
            .method("m", 0)
            .method("m", 1)
            .build();
    }

    #[test]
    fn display() {
        let s = AdtSchema::builder("Q")
            .method("enqueue", 1)
            .method("size", 0)
            .build();
        assert_eq!(format!("{s}"), "Q { enqueue/1, size/0 }");
    }
}
