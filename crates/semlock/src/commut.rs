//! The must-commutativity analysis and the commutativity function `F_c`
//! (§5.2, Fig. 19).
//!
//! A locking mode represents a (possibly infinite) set of runtime
//! operations. Two modes may be held concurrently only if *every* operation
//! represented by one commutes with *every* operation represented by the
//! other. Because mode arguments range over abstract values and wildcards,
//! the commutativity condition is evaluated in a three-valued logic: the
//! result is `True` only when the condition holds for **all** concrete
//! instantiations — the sound direction for admission control.

use crate::mode::{Mode, ModeArg, ModeOp};
use crate::phi::Phi;
use crate::spec::{ArgRef, CommutSpec, Cond};
use crate::value::Value;

/// Kleene three-valued truth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tri {
    /// Holds for every instantiation.
    True,
    /// Fails for every instantiation.
    False,
    /// Depends on the instantiation.
    Unknown,
}

impl Tri {
    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }

    fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }

    fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        }
    }
}

/// An argument term after resolution: what we statically know about the
/// runtime value in that position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Term {
    /// Exactly this value.
    Const(Value),
    /// Some value in abstract class αᵢ.
    Abs(u16),
    /// Any value at all (`*`).
    Any,
}

fn resolve(r: ArgRef, left: &[ModeArg], right: &[ModeArg]) -> Term {
    let arg = match r {
        ArgRef::Left(i) => left[i],
        ArgRef::Right(i) => right[i],
        ArgRef::Const(c) => return Term::Const(c),
    };
    match arg {
        ModeArg::Const(c) => Term::Const(c),
        ModeArg::Abs(a) => Term::Abs(a.0),
        ModeArg::Star => Term::Any,
    }
}

/// Three-valued equality of two terms under φ.
///
/// The key fact exploited here is that distinct abstract values denote
/// **disjoint** sets of runtime values, so `αᵢ = αⱼ` with `i ≠ j` is
/// definitely false, while `αᵢ = αᵢ` is merely possible.
fn term_eq(a: Term, b: Term, phi: &Phi) -> Tri {
    match (a, b) {
        (Term::Const(x), Term::Const(y)) => {
            if x == y {
                Tri::True
            } else {
                Tri::False
            }
        }
        (Term::Abs(i), Term::Abs(j)) => {
            if i != j {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        (Term::Abs(i), Term::Const(c)) | (Term::Const(c), Term::Abs(i)) => {
            if phi.apply(c).0 != i {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        (Term::Any, _) | (_, Term::Any) => Tri::Unknown,
    }
}

/// Evaluate a commutativity condition over two mode operations' abstract
/// argument vectors, in three-valued logic.
pub fn tri_eval(cond: &Cond, left: &[ModeArg], right: &[ModeArg], phi: &Phi) -> Tri {
    match cond {
        Cond::True => Tri::True,
        Cond::False => Tri::False,
        Cond::Eq(a, b) => term_eq(resolve(*a, left, right), resolve(*b, left, right), phi),
        Cond::Ne(a, b) => term_eq(resolve(*a, left, right), resolve(*b, left, right), phi).not(),
        Cond::And(cs) => cs
            .iter()
            .fold(Tri::True, |acc, c| acc.and(tri_eval(c, left, right, phi))),
        Cond::Or(cs) => cs
            .iter()
            .fold(Tri::False, |acc, c| acc.or(tri_eval(c, left, right, phi))),
        Cond::Not(c) => tri_eval(c, left, right, phi).not(),
    }
}

/// Must two mode operations commute — i.e. does the specification condition
/// hold for every pair of concrete operations they represent?
pub fn ops_must_commute(spec: &CommutSpec, a: &ModeOp, b: &ModeOp, phi: &Phi) -> bool {
    tri_eval(spec.cond(a.method, b.method), &a.args, &b.args, phi) == Tri::True
}

/// The commutativity function `F_c` applied to two modes: true iff **all**
/// operations represented by `a` commute with **all** operations
/// represented by `b` (§5.2).
pub fn modes_must_commute(spec: &CommutSpec, a: &Mode, b: &Mode, phi: &Phi) -> bool {
    a.ops()
        .iter()
        .all(|oa| b.ops().iter().all(|ob| ops_must_commute(spec, oa, ob, phi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::{Mode, ModeArg, ModeOp};
    use crate::phi::AbsVal;
    use crate::schema::set_schema;
    use crate::spec::CommutSpec;
    use std::sync::Arc;

    fn fig3b() -> Arc<CommutSpec> {
        let s = set_schema();
        CommutSpec::builder(s)
            .always("add", "add")
            .differ("add", 0, "remove", 0)
            .differ("add", 0, "contains", 0)
            .never("add", "size")
            .never("add", "clear")
            .always("remove", "remove")
            .differ("remove", 0, "contains", 0)
            .never("remove", "size")
            .never("remove", "clear")
            .always("contains", "contains")
            .always("contains", "size")
            .never("contains", "clear")
            .always("size", "size")
            .never("size", "clear")
            .always("clear", "clear")
            .build()
    }

    fn mode(spec: &CommutSpec, ops: &[(&str, &[ModeArg])]) -> Mode {
        Mode::new(
            ops.iter()
                .map(|(m, a)| ModeOp::new(spec.schema().method(m), a.to_vec()))
                .collect(),
        )
    }

    /// The full golden table of Fig. 19: φ with n=2 so φ(5)=α₁ (5 mod 2),
    /// modes {add(*)}, {add(5)}, and the four {add(αᵢ),remove(αⱼ)} modes.
    #[test]
    fn fig19_table() {
        let spec = fig3b();
        let phi = Phi::modulo(2);
        assert_eq!(phi.apply(Value(5)), AbsVal(1)); // φ(5) = α₁

        let star = mode(&spec, &[("add", &[ModeArg::Star])]);
        let add5 = mode(&spec, &[("add", &[ModeArg::Const(Value(5))])]);
        // Paper indexes α₁, α₂; we index α0, α1. Fig. 19's α₁ (the class of
        // 5) is our α1, its α₂ is our α0.
        let a = |i: u16| ModeArg::Abs(AbsVal(i));
        let m11 = mode(&spec, &[("add", &[a(1)]), ("remove", &[a(1)])]);
        let m10 = mode(&spec, &[("add", &[a(1)]), ("remove", &[a(0)])]);
        let m01 = mode(&spec, &[("add", &[a(0)]), ("remove", &[a(1)])]);
        let m00 = mode(&spec, &[("add", &[a(0)]), ("remove", &[a(0)])]);

        let fc = |x: &Mode, y: &Mode| modes_must_commute(&spec, x, y, &phi);

        // Row {add(*)}: true true false false false false
        assert!(fc(&star, &star));
        assert!(fc(&star, &add5));
        assert!(!fc(&star, &m11));
        assert!(!fc(&star, &m10));
        assert!(!fc(&star, &m01));
        assert!(!fc(&star, &m00));
        // Row {add(5)}: true false true false true
        // (paper order: (α1,α1)=false, (α1,α2)=true, (α2,α1)=false, (α2,α2)=true
        //  — remember the remove argument is what matters against add(5))
        assert!(fc(&add5, &add5));
        assert!(!fc(&add5, &m11)); // remove(α₁) may remove 5
        assert!(fc(&add5, &m10)); // remove(α₀) cannot be 5
        assert!(!fc(&add5, &m01));
        assert!(fc(&add5, &m00));
        // Diagonal of the {add,remove} modes: self-commute iff add and
        // remove classes differ.
        assert!(!fc(&m11, &m11));
        assert!(fc(&m10, &m10));
        assert!(fc(&m01, &m01));
        assert!(!fc(&m00, &m00));
        // Cross entries from the figure.
        assert!(!fc(&m11, &m10)); // add(α₁) vs remove(α₁)
                                  // {add(α₁),remove(α₁)} vs {add(α₀),remove(α₀)}: all cross pairs
                                  // involve distinct classes → commute.
        assert!(fc(&m11, &m00));
        // {add(α₁),remove(α₀)} vs {add(α₀),remove(α₁)}: add(α₁)/remove(α₁)
        // collide → false.
        assert!(!fc(&m10, &m01));
    }

    #[test]
    fn symmetry_of_fc() {
        let spec = fig3b();
        let phi = Phi::modulo(4);
        let a = |i: u16| ModeArg::Abs(AbsVal(i));
        let modes: Vec<Mode> = (0..4)
            .map(|i| mode(&spec, &[("add", &[a(i)]), ("remove", &[a((i + 1) % 4)])]))
            .collect();
        for x in &modes {
            for y in &modes {
                assert_eq!(
                    modes_must_commute(&spec, x, y, &phi),
                    modes_must_commute(&spec, y, x, &phi)
                );
            }
        }
    }

    #[test]
    fn star_vs_everything_mutating_conflicts() {
        let spec = fig3b();
        let phi = Phi::modulo(2);
        let all = Mode::all_operations(spec.schema());
        // The "lock everything" mode self-conflicts (size vs add, etc.).
        assert!(!modes_must_commute(&spec, &all, &all, &phi));
    }

    #[test]
    fn const_vs_const() {
        let spec = fig3b();
        let phi = Phi::modulo(2);
        let add5 = mode(&spec, &[("add", &[ModeArg::Const(Value(5))])]);
        let rm5 = mode(&spec, &[("remove", &[ModeArg::Const(Value(5))])]);
        let rm6 = mode(&spec, &[("remove", &[ModeArg::Const(Value(6))])]);
        assert!(!modes_must_commute(&spec, &add5, &rm5, &phi));
        assert!(modes_must_commute(&spec, &add5, &rm6, &phi));
    }

    #[test]
    fn tri_connectives() {
        use Tri::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(True.not(), False);
    }

    #[test]
    fn abs_vs_const_uses_phi() {
        // Ne(l0, r0) with left = α0 and right = const 5 where φ(5)=α1:
        // definitely different classes → definitely unequal → True.
        let spec = fig3b();
        let phi = Phi::modulo(2);
        let cond = Cond::args_differ(0, 0);
        let t = tri_eval(
            &cond,
            &[ModeArg::Abs(AbsVal(0))],
            &[ModeArg::Const(Value(5))],
            &phi,
        );
        assert_eq!(t, Tri::True);
        // Same class: unknown.
        let u = tri_eval(
            &cond,
            &[ModeArg::Abs(AbsVal(1))],
            &[ModeArg::Const(Value(5))],
            &phi,
        );
        assert_eq!(u, Tri::Unknown);
        let _ = spec;
    }
}
