//! 128-bit atomic word for the [`crate::mech::MechLayout::Dwcas`]
//! admission layout.
//!
//! `std` exposes no stable `AtomicU128`, and the `core::arch` cmpxchg16b
//! intrinsic does not lower to `lock cmpxchg16b` without a global
//! `-C target-feature` flag (it links against a missing
//! `__atomic_compare_exchange_16` helper otherwise). This module therefore
//! provides exactly the operations the admission protocol needs on top of
//! one primitive:
//!
//! * **native path** (`feature = "dwcas"` on `x86_64`, default): an inline
//!   `lock cmpxchg16b` with the RBX save/restore dance (LLVM reserves RBX).
//!   A `lock`-prefixed RMW is a full barrier on x86, so every ordering
//!   parameter is trivially honored; the parameters still matter — they are
//!   the contract the `model` crate checks the protocol against.
//! * **portable fallback** (feature off, or any other architecture): the
//!   same API over a spinlock-guarded `u128`. Not lock-free — it exists so
//!   the `Dwcas` layout stays *correct* everywhere (the `--no-default-
//!   features` CI job builds and tests it), while [`MechLayout::Auto`]
//!   only ever selects `Dwcas` when [`AtomicU128::is_lock_free`] is true.
//!
//! [`MechLayout::Auto`]: crate::mech::MechLayout::Auto

#![allow(unsafe_code)]

use crate::sync::Ordering;

#[cfg(all(feature = "dwcas", target_arch = "x86_64"))]
mod imp {
    use super::Ordering;
    use core::arch::asm;
    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicU8, Ordering as HostOrdering};

    /// Native 128-bit atomic backed by `lock cmpxchg16b`.
    #[repr(C, align(16))]
    pub struct AtomicU128 {
        v: UnsafeCell<u128>,
    }

    // `lock cmpxchg16b` serializes every access; the cell is never touched
    // non-atomically.
    unsafe impl Send for AtomicU128 {}
    unsafe impl Sync for AtomicU128 {}

    /// One hardware compare-exchange. Returns `(previous, swapped)`.
    ///
    /// # Safety
    /// `dst` must be 16-byte aligned and valid for reads and writes; the
    /// caller must only ever access it through this function.
    #[inline]
    unsafe fn cmpxchg16b(dst: *mut u128, old: u128, new: u128) -> (u128, bool) {
        let old_lo = old as u64;
        let old_hi = (old >> 64) as u64;
        let new_lo = new as u64;
        let new_hi = (new >> 64) as u64;
        let prev_lo: u64;
        let prev_hi: u64;
        let ok: u8;
        // LLVM reserves RBX, so the low half of the replacement value is
        // exchanged in and back out around the instruction.
        asm!(
            "xchg {rbx_save}, rbx",
            "lock cmpxchg16b [{dst}]",
            "sete {ok}",
            "mov rbx, {rbx_save}",
            dst = in(reg) dst,
            rbx_save = inout(reg) new_lo => _,
            ok = out(reg_byte) ok,
            inout("rax") old_lo => prev_lo,
            inout("rdx") old_hi => prev_hi,
            in("rcx") new_hi,
            options(nostack),
        );
        (((prev_hi as u128) << 64) | prev_lo as u128, ok != 0)
    }

    /// Which load instruction this host gets: 0 = unprobed, 1 = plain
    /// `movdqa` (AVX hosts), 2 = the locked cmpxchg16b idiom.
    static LOAD_PATH: AtomicU8 = AtomicU8::new(0);

    /// Whether an aligned 16-byte vector load is an atomic load here.
    ///
    /// Intel and AMD both document that on processors supporting AVX,
    /// 16-byte aligned SSE/AVX loads and stores execute atomically. On
    /// such hosts `load` is a single `movdqa` — no `lock` prefix, no
    /// cache-line ownership — which is what keeps the *uncontended* Dwcas
    /// admission within a small factor of the packed 64-bit word (a
    /// locked-RMW load would double the locked-instruction count per
    /// acquire/release cycle). Pre-AVX hardware makes no such promise, so
    /// it keeps the cmpxchg16b load idiom.
    #[inline]
    fn plain_load_is_atomic() -> bool {
        match LOAD_PATH.load(HostOrdering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let avx = std::arch::is_x86_feature_detected!("avx");
                LOAD_PATH.store(if avx { 1 } else { 2 }, HostOrdering::Relaxed);
                avx
            }
        }
    }

    /// One 16-byte aligned vector load (atomic on AVX hosts — see
    /// `plain_load_is_atomic`). x86-TSO gives every load acquire
    /// semantics, and the non-`pure` asm block is a compiler fence, so
    /// this honors any ordering the protocol ships for a load.
    ///
    /// # Safety
    /// `src` must be 16-byte aligned (`movdqa` faults otherwise) and only
    /// ever written through [`cmpxchg16b`]; the caller must have checked
    /// `plain_load_is_atomic`.
    #[inline]
    unsafe fn load_movdqa(src: *const u128) -> u128 {
        let lo: u64;
        let hi: u64;
        asm!(
            "movdqa {x}, [{src}]",
            "movq {lo}, {x}",
            "pextrq {hi}, {x}, 1",
            src = in(reg) src,
            x = out(xmm_reg) _,
            lo = out(reg) lo,
            hi = out(reg) hi,
            options(nostack, readonly),
        );
        ((hi as u128) << 64) | lo as u128
    }

    impl AtomicU128 {
        /// A fresh atomic holding `v`.
        pub const fn new(v: u128) -> AtomicU128 {
            AtomicU128 {
                v: UnsafeCell::new(v),
            }
        }

        /// Whether operations compile to a single hardware RMW.
        pub fn is_lock_free() -> bool {
            // Baked in at compile time for this path; cmpxchg16b has been
            // universal on x86_64 since early Core 2 parts, but probe
            // anyway so exotic VMs degrade loudly (panic on first use)
            // rather than corrupt.
            std::arch::is_x86_feature_detected!("cmpxchg16b")
        }

        /// Atomic load: a plain `movdqa` where the host guarantees aligned
        /// 16-byte loads are atomic (AVX — see `plain_load_is_atomic`),
        /// else a compare-exchange with an arbitrary expected value (the
        /// canonical cmpxchg16b load idiom; the write-back on a hit stores
        /// the value already present).
        #[inline]
        pub fn load(&self, _ord: Ordering) -> u128 {
            if plain_load_is_atomic() {
                unsafe { load_movdqa(self.v.get()) }
            } else {
                unsafe { cmpxchg16b(self.v.get(), 0, 0).0 }
            }
        }

        /// Atomic compare-exchange; `Ok(previous)` on success,
        /// `Err(actual)` on mismatch. Never fails spuriously.
        #[inline]
        pub fn compare_exchange(
            &self,
            expected: u128,
            new: u128,
            _ok: Ordering,
            _fail: Ordering,
        ) -> Result<u128, u128> {
            let (prev, swapped) = unsafe { cmpxchg16b(self.v.get(), expected, new) };
            if swapped {
                Ok(prev)
            } else {
                Err(prev)
            }
        }
    }
}

#[cfg(not(all(feature = "dwcas", target_arch = "x86_64")))]
mod imp {
    use super::Ordering;
    use std::cell::UnsafeCell;
    use std::sync::atomic::AtomicBool;

    /// Portable fallback: a spinlock-guarded `u128`. Correct everywhere,
    /// lock-free nowhere — [`crate::mech::MechLayout::Auto`] never selects
    /// the Dwcas layout on this path.
    pub struct AtomicU128 {
        locked: AtomicBool,
        v: UnsafeCell<u128>,
    }

    unsafe impl Send for AtomicU128 {}
    unsafe impl Sync for AtomicU128 {}

    impl AtomicU128 {
        /// A fresh atomic holding `v`.
        pub const fn new(v: u128) -> AtomicU128 {
            AtomicU128 {
                locked: AtomicBool::new(false),
                v: UnsafeCell::new(v),
            }
        }

        /// Always false on the fallback.
        pub fn is_lock_free() -> bool {
            false
        }

        fn with<R>(&self, f: impl FnOnce(&mut u128) -> R) -> R {
            while self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
            }
            let r = f(unsafe { &mut *self.v.get() });
            self.locked.store(false, Ordering::Release);
            r
        }

        /// Atomic load.
        #[inline]
        pub fn load(&self, _ord: Ordering) -> u128 {
            self.with(|v| *v)
        }

        /// Atomic compare-exchange (never spuriously failing).
        #[inline]
        pub fn compare_exchange(
            &self,
            expected: u128,
            new: u128,
            _ok: Ordering,
            _fail: Ordering,
        ) -> Result<u128, u128> {
            self.with(|v| {
                let prev = *v;
                if prev == expected {
                    *v = new;
                    Ok(prev)
                } else {
                    Err(prev)
                }
            })
        }
    }
}

pub use imp::AtomicU128;

impl AtomicU128 {
    /// Weak compare-exchange — same as the strong form on both paths
    /// (provided so the protocol code reads identically to the `u64`
    /// packed path and to the model shim).
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        expected: u128,
        new: u128,
        ok: Ordering,
        fail: Ordering,
    ) -> Result<u128, u128> {
        self.compare_exchange(expected, new, ok, fail)
    }

    /// Atomic `fetch_or`, built on the CAS primitive.
    #[inline]
    pub fn fetch_or(&self, bits: u128, ord: Ordering) -> u128 {
        let mut cur = self.load(Ordering::Relaxed);
        loop {
            match self.compare_exchange_weak(cur, cur | bits, ord, Ordering::Relaxed) {
                Ok(prev) => return prev,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomic `fetch_and`, built on the CAS primitive.
    #[inline]
    pub fn fetch_and(&self, bits: u128, ord: Ordering) -> u128 {
        let mut cur = self.load(Ordering::Relaxed);
        loop {
            match self.compare_exchange_weak(cur, cur & bits, ord, Ordering::Relaxed) {
                Ok(prev) => return prev,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Whether the running machine serves [`AtomicU128`] with a single
/// hardware compare-exchange. [`crate::mech::MechLayout::Auto`] consults
/// this before routing a 9–16-mode partition to the Dwcas layout.
pub fn dwcas_available() -> bool {
    AtomicU128::is_lock_free()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_load_roundtrip() {
        let a = AtomicU128::new(5);
        assert_eq!(a.load(Ordering::Relaxed), 5);
        assert_eq!(
            a.compare_exchange(5, (7u128 << 64) | 3, Ordering::AcqRel, Ordering::Relaxed),
            Ok(5)
        );
        assert_eq!(a.load(Ordering::Relaxed), (7u128 << 64) | 3);
        assert_eq!(
            a.compare_exchange(5, 9, Ordering::AcqRel, Ordering::Relaxed),
            Err((7u128 << 64) | 3)
        );
    }

    #[test]
    fn fetch_or_and_cover_both_halves() {
        let a = AtomicU128::new(1);
        assert_eq!(a.fetch_or(1u128 << 127, Ordering::Release), 1);
        assert_eq!(a.load(Ordering::Relaxed), 1 | (1u128 << 127));
        assert_eq!(
            a.fetch_and(!(1u128 << 127), Ordering::Acquire),
            1 | (1u128 << 127)
        );
        assert_eq!(a.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn contended_cas_increments_are_exact() {
        use std::sync::Arc;
        let a = Arc::new(AtomicU128::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let a = a.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        // Increment both halves so torn updates would show.
                        let mut cur = a.load(Ordering::Relaxed);
                        loop {
                            let new = cur + 1 + (1u128 << 64);
                            match a.compare_exchange_weak(
                                cur,
                                new,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => break,
                                Err(actual) => cur = actual,
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let v = a.load(Ordering::Relaxed);
        assert_eq!(v as u64, 40_000);
        assert_eq!((v >> 64) as u64, 40_000);
    }
}
