//! Deterministic, seeded fault injection for chaos testing the runtime.
//!
//! A [`FaultPlan`] decides — as a pure function of its seed and the
//! injection coordinates (point, transaction, instance, step) — whether to
//! inject a delay, a forced acquisition timeout, or a panic at a lock,
//! unlock, or ADT-operation boundary. The interp executor
//! (`interp::Interp::with_faults`) and the `workloads` chaos driver thread
//! the plan through every boundary; soak tests then assert the runtime's
//! global invariants survive every injected schedule.
//!
//! Boundary decisions are made by the *callers*, before the runtime entry
//! point is invoked — so they fire identically whether the acquisition
//! then takes the lock-free admission fast path or parks on the slow path
//! ([`crate::mech`]): the fast path cannot skip an injected fault.
//!
//! Injected panics carry an [`InjectedPanic`] payload so harnesses can tell
//! them apart from genuine bugs and re-raise the latter.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where in the protocol a fault may be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Immediately before a lock acquisition.
    Lock,
    /// Immediately before an unlock.
    Unlock,
    /// Immediately before an ADT operation runs.
    OpStart,
    /// Immediately after an ADT operation returned (the operation's effect
    /// is already applied — a panic here exercises the poisoning path).
    OpEnd,
}

/// What the plan decided for one boundary crossing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed normally.
    None,
    /// Sleep for the given duration before proceeding.
    Delay(Duration),
    /// Fail the acquisition as if its deadline had already elapsed
    /// (only produced at [`FaultPoint::Lock`]).
    Timeout,
    /// Panic with an [`InjectedPanic`] payload.
    Panic,
}

/// Injection counters (relaxed; read by chaos reports).
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Delays injected.
    pub delays: AtomicU64,
    /// Forced timeouts injected.
    pub timeouts: AtomicU64,
    /// Panics injected.
    pub panics: AtomicU64,
}

/// A deterministic seeded fault plan.
///
/// Probabilities are expressed in parts-per-million of boundary crossings.
/// `decide` is a pure function of `(seed, point, txn, instance, step)`, so
/// a fixed transaction replaying the same steps sees the same faults.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    delay_ppm: u32,
    timeout_ppm: u32,
    panic_ppm: u32,
    max_delay_us: u64,
    stats: FaultStats,
}

impl FaultPlan {
    /// A plan that injects nothing (configure with the builder methods).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay_ppm: 0,
            timeout_ppm: 0,
            panic_ppm: 0,
            max_delay_us: 200,
            stats: FaultStats::default(),
        }
    }

    /// Inject delays of up to `max` with probability `ppm` / 1e6.
    pub fn with_delays(mut self, ppm: u32, max: Duration) -> FaultPlan {
        self.delay_ppm = ppm;
        self.max_delay_us = max.as_micros().max(1) as u64;
        self
    }

    /// Force acquisition timeouts with probability `ppm` / 1e6.
    pub fn with_timeouts(mut self, ppm: u32) -> FaultPlan {
        self.timeout_ppm = ppm;
        self
    }

    /// Inject panics with probability `ppm` / 1e6.
    pub fn with_panics(mut self, ppm: u32) -> FaultPlan {
        self.panic_ppm = ppm;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Decide the fault (if any) for one boundary crossing. `step` is a
    /// caller-maintained per-transaction ordinal so successive crossings of
    /// the same boundary draw independent decisions.
    pub fn decide(&self, point: FaultPoint, txn: u64, instance: u64, step: u64) -> FaultAction {
        let h = mix(&[
            self.seed,
            point_tag(point),
            txn.wrapping_mul(0x9E3779B97F4A7C15),
            instance,
            step,
        ]);
        let roll = (h % 1_000_000) as u32;
        // Bands: [0, panic) panic; [panic, panic+timeout) forced timeout
        // (lock sites only); then a delay band; everything else passes.
        let mut hi = self.panic_ppm;
        if roll < hi {
            self.stats.panics.fetch_add(1, Ordering::Relaxed);
            return FaultAction::Panic;
        }
        if point == FaultPoint::Lock {
            hi += self.timeout_ppm;
            if roll < hi {
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                return FaultAction::Timeout;
            }
        }
        hi += self.delay_ppm;
        if roll < hi {
            self.stats.delays.fetch_add(1, Ordering::Relaxed);
            let us = 1 + (h >> 20) % self.max_delay_us;
            return FaultAction::Delay(Duration::from_micros(us));
        }
        FaultAction::None
    }
}

fn point_tag(p: FaultPoint) -> u64 {
    match p {
        FaultPoint::Lock => 0x10C4,
        FaultPoint::Unlock => 0x0431,
        FaultPoint::OpStart => 0x0905,
        FaultPoint::OpEnd => 0x09E0,
    }
}

/// SplitMix64 finalizer-based mixing of the decision coordinates.
fn mix(vals: &[u64]) -> u64 {
    let mut x: u64 = 0x243F6A8885A308D3;
    for &v in vals {
        x ^= splitmix64(v ^ x);
    }
    x
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Panic payload identifying an injected (as opposed to genuine) panic.
#[derive(Clone, Debug)]
pub struct InjectedPanic {
    /// Where the panic was injected.
    pub point: FaultPoint,
    /// The transaction it was injected into.
    pub txn: u64,
    /// The instance at the boundary.
    pub instance: u64,
}

/// Raise an injected panic carrying an [`InjectedPanic`] payload.
pub fn panic_now(point: FaultPoint, txn: u64, instance: u64) -> ! {
    std::panic::panic_any(InjectedPanic {
        point,
        txn,
        instance,
    })
}

/// Downcast a caught panic payload to an [`InjectedPanic`], if it is one.
pub fn injected(payload: &(dyn Any + Send)) -> Option<&InjectedPanic> {
    payload.downcast_ref::<InjectedPanic>()
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report and backtrace for [`InjectedPanic`] payloads,
/// delegating every other panic to the previous hook. Chaos harnesses call
/// this so thousands of injected panics don't drown genuine failures in
/// their output; it is idempotent and safe with concurrent tests.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(42)
            .with_delays(100_000, Duration::from_micros(50))
            .with_timeouts(50_000)
            .with_panics(20_000);
        let b = FaultPlan::new(42)
            .with_delays(100_000, Duration::from_micros(50))
            .with_timeouts(50_000)
            .with_panics(20_000);
        for step in 0..500 {
            assert_eq!(
                a.decide(FaultPoint::Lock, 7, 3, step),
                b.decide(FaultPoint::Lock, 7, 3, step)
            );
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let a = FaultPlan::new(1).with_panics(500_000);
        let b = FaultPlan::new(2).with_panics(500_000);
        let mismatch = (0..200)
            .filter(|&s| {
                a.decide(FaultPoint::OpEnd, 1, 1, s) != b.decide(FaultPoint::OpEnd, 1, 1, s)
            })
            .count();
        assert!(mismatch > 0, "seeds produced identical schedules");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = FaultPlan::new(9).with_delays(250_000, Duration::from_micros(10));
        let delays = (0..10_000)
            .filter(|&s| {
                matches!(
                    p.decide(FaultPoint::OpStart, 1, 1, s),
                    FaultAction::Delay(_)
                )
            })
            .count();
        assert!(
            (1_500..3_500).contains(&delays),
            "expected ~25% delays, got {delays}/10000"
        );
        assert_eq!(p.stats().delays.load(Ordering::Relaxed), delays as u64);
    }

    #[test]
    fn timeout_band_only_at_lock_points() {
        let p = FaultPlan::new(3).with_timeouts(1_000_000);
        assert_eq!(p.decide(FaultPoint::Lock, 1, 1, 1), FaultAction::Timeout);
        assert_eq!(p.decide(FaultPoint::OpEnd, 1, 1, 1), FaultAction::None);
    }

    #[test]
    fn injected_payload_roundtrip() {
        let r = std::panic::catch_unwind(|| panic_now(FaultPoint::OpEnd, 5, 6));
        let payload = r.unwrap_err();
        let inj = injected(&*payload).expect("payload is InjectedPanic");
        assert_eq!(inj.txn, 5);
        assert_eq!(inj.instance, 6);
    }
}
