//! Locking modes and the mode table (§5.1, §5.3).
//!
//! The compiler implements the semantic locking of an ADT by generating a
//! *finite* number of locking modes, each representing a set of runtime
//! operations — a generalization of the read/write modes of a classical
//! read–write lock. Modes are derived from the symbolic sets inferred by the
//! §4 analysis:
//!
//! * a **constant** symbolic set (no program variables) becomes a single
//!   mode;
//! * a **variable** symbolic set with `k` variables becomes `nᵏ` modes, one
//!   per assignment of abstract values `α₀ … α_{n-1}` to the variables.
//!
//! [`ModeTable`] owns the generated modes, the commutativity function `F_c`
//! between them, and the partition of modes into independent locking
//! mechanisms (§5.2). It also implements the §5.3 optimizations:
//! indistinguishable-mode merging and the mode-count cap `N` (realized by
//! coarsening φ until the table fits).

use crate::commut::modes_must_commute;
use crate::partition::UnionFind;
use crate::phi::{AbsVal, Phi};
use crate::schema::{AdtSchema, MethodIdx};
use crate::spec::CommutSpec;
use crate::symbolic::{Operation, SymArg, SymbolicSet};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An argument of a mode operation: constant, abstract value, or wildcard.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ModeArg {
    /// Any value (`*`).
    Star,
    /// Exactly this value.
    Const(Value),
    /// Any value in abstract class αᵢ.
    Abs(AbsVal),
}

impl fmt::Display for ModeArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModeArg::Star => write!(f, "*"),
            ModeArg::Const(c) => write!(f, "{c}"),
            ModeArg::Abs(a) => write!(f, "{a}"),
        }
    }
}

/// One operation pattern within a mode, e.g. `add(α₃)` or `put(α₁, *)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ModeOp {
    /// Method index in the ADT schema.
    pub method: MethodIdx,
    /// Abstract argument patterns.
    pub args: Vec<ModeArg>,
}

impl ModeOp {
    /// Construct a mode operation.
    pub fn new(method: MethodIdx, args: Vec<ModeArg>) -> Self {
        ModeOp { method, args }
    }

    /// Does this pattern cover a concrete operation under φ?
    pub fn covers(&self, op: &Operation, phi: &Phi) -> bool {
        self.method == op.method
            && self.args.len() == op.args.len()
            && self.args.iter().zip(&op.args).all(|(m, v)| match m {
                ModeArg::Star => true,
                ModeArg::Const(c) => c == v,
                ModeArg::Abs(a) => phi.apply(*v) == *a,
            })
    }
}

/// A locking mode: a set of operation patterns.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Mode {
    ops: Vec<ModeOp>,
}

impl Mode {
    /// Build a mode from patterns (canonicalized: sorted, deduplicated,
    /// subsumed patterns dropped — `add(α₁)` is redundant next to
    /// `add(*)`; the covered operation set is unchanged).
    pub fn new(mut ops: Vec<ModeOp>) -> Self {
        ops.sort();
        ops.dedup();
        let subsumes = |general: &ModeOp, specific: &ModeOp| {
            general.method == specific.method
                && general
                    .args
                    .iter()
                    .zip(&specific.args)
                    .all(|(g, s)| matches!(g, ModeArg::Star) || g == s)
        };
        let keep: Vec<bool> = ops
            .iter()
            .map(|op| !ops.iter().any(|other| other != op && subsumes(other, op)))
            .collect();
        let mut it = keep.iter();
        ops.retain(|_| *it.next().unwrap());
        Mode { ops }
    }

    /// The mode covering every operation of the schema — the `lock(+)` of §3.
    pub fn all_operations(schema: &AdtSchema) -> Self {
        Mode::new(
            (0..schema.method_count())
                .map(|m| ModeOp::new(m, vec![ModeArg::Star; schema.sig(m).arity]))
                .collect(),
        )
    }

    /// The operation patterns.
    pub fn ops(&self) -> &[ModeOp] {
        &self.ops
    }

    /// Does this mode cover (grant permission for) a concrete operation?
    pub fn covers(&self, op: &Operation, phi: &Phi) -> bool {
        self.ops.iter().any(|m| m.covers(op, phi))
    }

    /// Render against a schema, e.g. `{add(α1),remove(α0)}`.
    pub fn display<'a>(&'a self, schema: &'a AdtSchema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Mode, &'a AdtSchema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{{")?;
                for (i, o) in self.0.ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}(", self.1.sig(o.method).name)?;
                    for (j, a) in o.args.iter().enumerate() {
                        if j > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")?;
                }
                write!(f, "}}")
            }
        }
        D(self, schema)
    }
}

/// Identifier of a canonical mode within a [`ModeTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ModeId(pub u32);

/// Identifier of a lock site registered with a [`ModeTableBuilder`].
///
/// A lock site corresponds to one inserted `lock(SY)` call; its symbolic set
/// determines which mode the runtime selects given the site's key values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LockSiteId(pub usize);

#[derive(Debug)]
enum SiteKind {
    /// Constant symbolic set: always this raw mode.
    Const(u32),
    /// Variable symbolic set: raw mode = `base + Σ φ(vᵢ)·nⁱ`.
    Var { base: u32, slots: usize },
}

#[derive(Debug)]
struct Site {
    symset: SymbolicSet,
    kind: SiteKind,
}

/// Per-mode placement inside the partitioned locking mechanisms.
#[derive(Clone, Debug)]
pub struct ModePlacement {
    /// Partition (mechanism) index.
    pub part: u32,
    /// Index of this mode within its partition.
    pub local: u32,
    /// Local indices (within the same partition) of conflicting modes.
    pub local_conflicts: Vec<u32>,
    /// Packed-word field mask over `local_conflicts`, precomputed here so
    /// the admission fast path ([`crate::mech::Mech`]) does zero per-acquire
    /// setup. Covers only locals within [`crate::mech::PACKED_MODE_LIMIT`];
    /// partitions wider than that use the mutex fallback and never consult
    /// the mask.
    pub conflict_mask: u64,
    /// Dwcas-word field mask over `local_conflicts` (sixteen 7-bit
    /// fields), precomputed like `conflict_mask`. Covers only locals
    /// within [`crate::mech::DWCAS_MODE_LIMIT`]; wider partitions use the
    /// mutex fallback and never consult it.
    pub conflict_mask128: u128,
    /// True if the mode commutes with every mode including itself: locking
    /// it can never block nor be blocked, so acquisition is a no-op.
    pub free: bool,
}

impl ModePlacement {
    /// The mode's conflict set in the borrowed form the mechanism consumes.
    pub fn conflicts(&self) -> crate::mech::ConflictSet<'_> {
        crate::mech::ConflictSet::from_parts(
            &self.local_conflicts,
            self.conflict_mask,
            self.conflict_mask128,
        )
    }
}

/// The compiled locking-mode table for one ADT equivalence class.
pub struct ModeTable {
    schema: Arc<AdtSchema>,
    spec: Arc<CommutSpec>,
    phi: Phi,
    sites: Vec<Site>,
    /// Raw (pre-merge) mode index → canonical mode id.
    raw_to_canon: Vec<u32>,
    /// Canonical modes after dedup + indistinguishable merging.
    modes: Vec<Mode>,
    /// `F_c` over canonical modes, row-major `modes.len()²` bit matrix.
    fc: Vec<bool>,
    /// Placement of each canonical mode in the partitioned mechanisms.
    placement: Vec<ModePlacement>,
    /// Modes per partition.
    part_sizes: Vec<u32>,
}

impl ModeTable {
    /// Start building a table.
    pub fn builder(schema: Arc<AdtSchema>, spec: Arc<CommutSpec>, phi: Phi) -> ModeTableBuilder {
        assert!(
            Arc::ptr_eq(spec.schema(), &schema) || *spec.schema() == schema,
            "specification is for a different schema"
        );
        ModeTableBuilder {
            schema,
            spec,
            phi,
            symsets: Vec::new(),
            cap: DEFAULT_MODE_CAP,
            partitioning: true,
        }
    }

    /// The ADT schema.
    pub fn schema(&self) -> &Arc<AdtSchema> {
        &self.schema
    }

    /// The commutativity specification.
    pub fn spec(&self) -> &Arc<CommutSpec> {
        &self.spec
    }

    /// The (possibly coarsened) abstract-value hash in effect.
    pub fn phi(&self) -> Phi {
        self.phi
    }

    /// Number of canonical modes.
    pub fn mode_count(&self) -> usize {
        self.modes.len()
    }

    /// Number of partitions (independent locking mechanisms).
    pub fn partition_count(&self) -> usize {
        self.part_sizes.len()
    }

    /// Modes per partition, indexed by partition id.
    pub fn partition_sizes(&self) -> &[u32] {
        &self.part_sizes
    }

    /// The canonical mode with the given id.
    pub fn mode(&self, id: ModeId) -> &Mode {
        &self.modes[id.0 as usize]
    }

    /// Placement information for a mode.
    pub fn placement(&self, id: ModeId) -> &ModePlacement {
        &self.placement[id.0 as usize]
    }

    /// Reverse placement lookup: the canonical mode at `(part, local)`, if
    /// any. A linear scan over the (small) mode set — used by the
    /// telemetry layer to attribute sampled conflicting holds back to
    /// canonical mode ids, never on the admission path.
    pub fn mode_for_local(&self, part: u32, local: u32) -> Option<ModeId> {
        self.placement
            .iter()
            .position(|p| !p.free && p.part == part && p.local == local)
            .map(|i| ModeId(i as u32))
    }

    /// The commutativity function `F_c` between two canonical modes.
    pub fn fc(&self, a: ModeId, b: ModeId) -> bool {
        self.fc[a.0 as usize * self.modes.len() + b.0 as usize]
    }

    /// The conflict graph of one partition as per-local adjacency rows:
    /// `rows[l]` lists the local indices whose modes do **not** commute
    /// with the mode at `(part, l)` under `F_c`. This is the input the
    /// conflict-graph admission backend
    /// ([`crate::admission::ConflictGraphBackend`]) precomputes — derived
    /// here directly from `F_c` rather than read back from
    /// [`ModePlacement::local_conflicts`], so the backend exercises the
    /// commutativity analysis itself (the two are asserted equal by the
    /// equivalence tests).
    pub fn conflict_adjacency(&self, part: u32) -> Vec<Vec<u32>> {
        let n = self.part_sizes[part as usize] as usize;
        let mut rows = vec![Vec::new(); n];
        for (local, row) in rows.iter_mut().enumerate() {
            let Some(a) = self.mode_for_local(part, local as u32) else {
                continue;
            };
            for other in 0..n {
                let Some(b) = self.mode_for_local(part, other as u32) else {
                    continue;
                };
                if !self.fc(a, b) {
                    row.push(other as u32);
                }
            }
        }
        rows
    }

    /// Select the mode for a lock site given the runtime values of its key
    /// slots — the dynamic mode lookup of §5.1 (`t1 = φ(i); …`).
    pub fn select(&self, site: LockSiteId, keys: &[Value]) -> ModeId {
        let site = &self.sites[site.0];
        let raw = match site.kind {
            SiteKind::Const(raw) => raw,
            SiteKind::Var { base, slots } => {
                assert!(
                    keys.len() >= slots,
                    "site needs {} key values, got {}",
                    slots,
                    keys.len()
                );
                let n = self.phi.n() as u32;
                let mut idx = 0u32;
                for i in (0..slots).rev() {
                    idx = idx * n + self.phi.apply(keys[i]).0 as u32;
                }
                base + idx
            }
        };
        ModeId(self.raw_to_canon[raw as usize])
    }

    /// The symbolic set registered for a site.
    pub fn site_symset(&self, site: LockSiteId) -> &SymbolicSet {
        &self.sites[site.0].symset
    }

    /// Number of registered sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Does a mode grant permission to invoke a concrete operation?
    /// Used by the S2PL protocol checker.
    pub fn mode_covers(&self, id: ModeId, op: &Operation) -> bool {
        self.mode(id).covers(op, &self.phi)
    }
}

impl fmt::Debug for ModeTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ModeTable for {} (φ n={}, {} modes, {} partitions):",
            self.schema.name(),
            self.phi.n(),
            self.modes.len(),
            self.part_sizes.len()
        )?;
        for (i, m) in self.modes.iter().enumerate() {
            writeln!(
                f,
                "  m{}: {} part={} free={}",
                i,
                m.display(&self.schema),
                self.placement[i].part,
                self.placement[i].free
            )?;
        }
        Ok(())
    }
}

/// Default cap `N` on the number of modes per ADT class (§5.3 opt. 3).
pub const DEFAULT_MODE_CAP: usize = 4096;

/// Builder for [`ModeTable`]: register the symbolic sets of all lock sites
/// of one equivalence class, then build.
pub struct ModeTableBuilder {
    schema: Arc<AdtSchema>,
    spec: Arc<CommutSpec>,
    phi: Phi,
    symsets: Vec<SymbolicSet>,
    cap: usize,
    partitioning: bool,
}

impl ModeTableBuilder {
    /// Override the mode-count cap `N`.
    pub fn cap(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.cap = n;
        self
    }

    /// Disable lock partitioning (§5.2): all modes share a single
    /// mechanism, whose internal lock becomes the bottleneck the paper
    /// describes. Used by the ablation benchmarks.
    pub fn single_partition(mut self) -> Self {
        self.partitioning = false;
        self
    }

    /// Register a lock site with the given symbolic set; returns the id the
    /// runtime will use to select modes at this site.
    pub fn add_site(&mut self, symset: SymbolicSet) -> LockSiteId {
        assert!(!symset.is_empty(), "a lock site must lock something");
        let id = LockSiteId(self.symsets.len());
        self.symsets.push(symset);
        id
    }

    /// Convenience: register the `lock(+)` site covering all operations.
    pub fn add_site_all(&mut self) -> LockSiteId {
        self.add_site(SymbolicSet::all_operations(&self.schema))
    }

    /// Generate modes, merge per §5.3, compute `F_c`, and partition.
    pub fn build(self) -> Arc<ModeTable> {
        let ModeTableBuilder {
            schema,
            spec,
            mut phi,
            symsets,
            cap,
            partitioning,
        } = self;

        // Coarsen φ until the raw mode count fits the cap (§5.3 opt. 3:
        // "if we infer more than N modes, we merge them until we have N").
        // Merging assignments that collide under a coarser φ is exactly a
        // union of the merged modes' operation sets.
        let raw_count = |phi: &Phi| -> usize {
            symsets
                .iter()
                .map(|sy| {
                    if sy.is_variable() {
                        (phi.n() as usize).saturating_pow(sy.var_slots() as u32)
                    } else {
                        1
                    }
                })
                .sum()
        };
        while raw_count(&phi) > cap && phi.n() > 1 {
            phi = phi.coarsen(phi.n() / 2);
        }

        // Materialize raw modes per site.
        let mut sites = Vec::with_capacity(symsets.len());
        let mut raw_modes: Vec<Mode> = Vec::new();
        for symset in symsets {
            if !symset.is_variable() {
                let mode = instantiate(&symset, &[]);
                let raw = raw_modes.len() as u32;
                raw_modes.push(mode);
                sites.push(Site {
                    symset,
                    kind: SiteKind::Const(raw),
                });
            } else {
                let slots = symset.var_slots();
                let n = phi.n() as usize;
                let base = raw_modes.len() as u32;
                let total = n.pow(slots as u32);
                for idx in 0..total {
                    // Decode idx into an abstract value per slot (slot 0 is
                    // the least significant digit, matching `select`).
                    let mut assignment = Vec::with_capacity(slots);
                    let mut rem = idx;
                    for _ in 0..slots {
                        assignment.push(AbsVal((rem % n) as u16));
                        rem /= n;
                    }
                    raw_modes.push(instantiate(&symset, &assignment));
                }
                sites.push(Site {
                    symset,
                    kind: SiteKind::Var { base, slots },
                });
            }
        }

        // Step 1: dedup structurally identical modes.
        let mut canon_of: HashMap<Mode, u32> = HashMap::new();
        let mut deduped: Vec<Mode> = Vec::new();
        let mut raw_to_dedup = Vec::with_capacity(raw_modes.len());
        for m in &raw_modes {
            let id = *canon_of.entry(m.clone()).or_insert_with(|| {
                deduped.push(m.clone());
                (deduped.len() - 1) as u32
            });
            raw_to_dedup.push(id);
        }

        // Step 2: F_c over deduped modes (symmetric).
        let k = deduped.len();
        let mut fc = vec![true; k * k];
        for i in 0..k {
            for j in i..k {
                let c = modes_must_commute(&spec, &deduped[i], &deduped[j], &phi);
                fc[i * k + j] = c;
                fc[j * k + i] = c;
            }
        }

        // Step 3: merge indistinguishable modes — identical F_c rows
        // (§5.3 opt. 1). Such modes admit exactly the same concurrency, so
        // one representative (with the union of operation patterns, kept for
        // coverage checks) suffices.
        let mut row_repr: HashMap<&[bool], u32> = HashMap::new();
        let mut dedup_to_canon = vec![0u32; k];
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for i in 0..k {
            let row = &fc[i * k..(i + 1) * k];
            if let Some(&g) = row_repr.get(row) {
                dedup_to_canon[i] = g;
                groups[g as usize].push(i as u32);
            } else {
                let g = groups.len() as u32;
                row_repr.insert(row, g);
                dedup_to_canon[i] = g;
                groups.push(vec![i as u32]);
            }
        }
        drop(row_repr);
        let modes: Vec<Mode> = groups
            .iter()
            .map(|g| {
                let mut ops = Vec::new();
                for &d in g {
                    ops.extend(deduped[d as usize].ops().iter().cloned());
                }
                Mode::new(ops)
            })
            .collect();
        let n_canon = modes.len();
        let mut canon_fc = vec![true; n_canon * n_canon];
        for a in 0..n_canon {
            for b in 0..n_canon {
                // Representative rows are identical within a group, so any
                // member's entry is the group's entry.
                let i = groups[a][0] as usize;
                let j = groups[b][0] as usize;
                canon_fc[a * n_canon + b] = fc[i * k + j];
            }
        }
        let raw_to_canon: Vec<u32> = raw_to_dedup
            .iter()
            .map(|&d| dedup_to_canon[d as usize])
            .collect();

        // Step 4: partition modes into independent mechanisms (§5.2): two
        // modes share a mechanism iff connected by a chain of conflicts.
        let mut uf = UnionFind::new(n_canon);
        if partitioning {
            for a in 0..n_canon {
                for b in (a + 1)..n_canon {
                    if !canon_fc[a * n_canon + b] {
                        uf.union(a, b);
                    }
                }
            }
        } else {
            for a in 1..n_canon {
                uf.union(0, a);
            }
        }
        let mut part_ids: HashMap<usize, u32> = HashMap::new();
        let mut part_sizes: Vec<u32> = Vec::new();
        let mut placement: Vec<ModePlacement> = Vec::with_capacity(n_canon);
        for m in 0..n_canon {
            let root = uf.find(m);
            let part = *part_ids.entry(root).or_insert_with(|| {
                part_sizes.push(0);
                (part_sizes.len() - 1) as u32
            });
            let local = part_sizes[part as usize];
            part_sizes[part as usize] += 1;
            placement.push(ModePlacement {
                part,
                local,
                local_conflicts: Vec::new(),
                conflict_mask: 0,
                conflict_mask128: 0,
                free: false,
            });
        }
        // Local conflict lists and the "free" flag.
        for a in 0..n_canon {
            let mut conflicts = Vec::new();
            for b in 0..n_canon {
                if !canon_fc[a * n_canon + b] {
                    debug_assert_eq!(placement[a].part, placement[b].part);
                    conflicts.push(placement[b].local);
                }
            }
            // Without partitioning even conflict-free modes go through the
            // single mechanism — that is precisely the bottleneck the
            // ablation measures.
            placement[a].free = partitioning && conflicts.is_empty();
            placement[a].conflict_mask = crate::mech::packed_conflict_mask(&conflicts);
            placement[a].conflict_mask128 = crate::mech::dwcas_conflict_mask(&conflicts);
            placement[a].local_conflicts = conflicts;
        }

        Arc::new(ModeTable {
            schema,
            spec,
            phi,
            sites,
            raw_to_canon,
            modes,
            fc: canon_fc,
            placement,
            part_sizes,
        })
    }
}

/// Substitute an assignment of abstract values for the variable slots of a
/// symbolic set, producing a mode.
fn instantiate(symset: &SymbolicSet, assignment: &[AbsVal]) -> Mode {
    Mode::new(
        symset
            .ops()
            .iter()
            .map(|op| {
                ModeOp::new(
                    op.method,
                    op.args
                        .iter()
                        .map(|a| match a {
                            SymArg::Star => ModeArg::Star,
                            SymArg::Const(c) => ModeArg::Const(*c),
                            SymArg::Var(k) => ModeArg::Abs(assignment[*k]),
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::set_schema;
    use crate::symbolic::SymOp;

    fn fig3b() -> Arc<CommutSpec> {
        let s = set_schema();
        CommutSpec::builder(s)
            .always("add", "add")
            .differ("add", 0, "remove", 0)
            .differ("add", 0, "contains", 0)
            .never("add", "size")
            .never("add", "clear")
            .always("remove", "remove")
            .differ("remove", 0, "contains", 0)
            .never("remove", "size")
            .never("remove", "clear")
            .always("contains", "contains")
            .always("contains", "size")
            .never("contains", "clear")
            .always("size", "size")
            .never("size", "clear")
            .always("clear", "clear")
            .build()
    }

    fn var_site(schema: &AdtSchema, names: &[(&str, &[SymArg])]) -> SymbolicSet {
        SymbolicSet::new(
            names
                .iter()
                .map(|(n, a)| SymOp::new(schema.method(n), a.to_vec()))
                .collect(),
        )
    }

    #[test]
    fn constant_site_single_mode() {
        let spec = fig3b();
        let schema = spec.schema().clone();
        let mut b = ModeTable::builder(schema.clone(), spec, Phi::modulo(8));
        let site = b.add_site(var_site(&schema, &[("add", &[SymArg::Star])]));
        let t = b.build();
        assert_eq!(t.mode_count(), 1);
        let m = t.select(site, &[]);
        assert_eq!(m, t.select(site, &[Value(42)]));
        // {add(*)} commutes with itself → free mode, zero partitions needed
        // for blocking but the partition still exists structurally.
        assert!(t.placement(m).free);
    }

    #[test]
    fn variable_site_generates_n_modes() {
        let spec = fig3b();
        let schema = spec.schema().clone();
        let mut b = ModeTable::builder(schema.clone(), spec, Phi::modulo(4));
        let site = b.add_site(var_site(
            &schema,
            &[("add", &[SymArg::Var(0)]), ("remove", &[SymArg::Var(0)])],
        ));
        let t = b.build();
        // One mode per abstract value; each self-conflicts (add/remove same
        // class) but commutes with the other classes → 4 modes, each its own
        // partition of size 1.
        assert_eq!(t.mode_count(), 4);
        assert_eq!(t.partition_count(), 4);
        for v in 0..16u64 {
            let m = t.select(site, &[Value(v)]);
            assert_eq!(t.mode(m).ops().len(), 2);
            assert!(!t.fc(m, m), "add/remove on same class self-conflicts");
            // Selection is φ-consistent: v+16 ≡ v (mod 4).
            assert_eq!(m, t.select(site, &[Value(v + 16)]));
        }
        // Same abstract class ⇒ same mode.
        assert_eq!(t.select(site, &[Value(1)]), t.select(site, &[Value(5)]));
        assert_ne!(t.select(site, &[Value(1)]), t.select(site, &[Value(2)]));
    }

    #[test]
    fn two_variable_site() {
        let spec = fig3b();
        let schema = spec.schema().clone();
        let mut b = ModeTable::builder(schema.clone(), spec, Phi::modulo(2));
        let site = b.add_site(var_site(
            &schema,
            &[("add", &[SymArg::Var(0)]), ("remove", &[SymArg::Var(1)])],
        ));
        let t = b.build();
        // 4 raw modes; {add(α0),remove(α1)} and {add(α1),remove(α0)} are NOT
        // indistinguishable from the diagonal ones, but the two diagonal
        // modes (same class) may merge if rows match. Verify selection
        // correctness rather than exact counts.
        let m_01 = t.select(site, &[Value(0), Value(1)]);
        let m_10 = t.select(site, &[Value(1), Value(0)]);
        let m_00 = t.select(site, &[Value(0), Value(0)]);
        let m_11 = t.select(site, &[Value(1), Value(1)]);
        // Diagonal modes self-conflict, off-diagonal self-commute.
        assert!(!t.fc(m_00, m_00));
        assert!(!t.fc(m_11, m_11));
        assert!(t.fc(m_01, m_01));
        assert!(t.fc(m_10, m_10));
        // add(α0)/remove(α0) collide across m_01 and m_10.
        assert!(!t.fc(m_01, m_10));
        // m_00 and m_11 commute (all cross pairs in distinct classes).
        assert!(t.fc(m_00, m_11));
    }

    #[test]
    fn mode_cap_coarsens_phi() {
        let spec = fig3b();
        let schema = spec.schema().clone();
        let mut b = ModeTable::builder(schema.clone(), spec, Phi::modulo(64)).cap(8);
        let _site = b.add_site(var_site(
            &schema,
            &[("add", &[SymArg::Var(0)]), ("remove", &[SymArg::Var(0)])],
        ));
        let t = b.build();
        assert!(t.mode_count() <= 8, "cap respected: {}", t.mode_count());
        assert!(t.phi().n() <= 8);
    }

    #[test]
    fn indistinguishable_modes_merge() {
        // contains-only site: every contains(αᵢ) commutes with everything
        // the table contains (contains commutes with contains and size) —
        // all rows identical → merged into one free mode.
        let spec = fig3b();
        let schema = spec.schema().clone();
        let mut b = ModeTable::builder(schema.clone(), spec, Phi::modulo(16));
        let site = b.add_site(var_site(&schema, &[("contains", &[SymArg::Var(0)])]));
        let t = b.build();
        assert_eq!(t.mode_count(), 1);
        let m = t.select(site, &[Value(3)]);
        assert!(t.placement(m).free);
    }

    #[test]
    fn compute_if_absent_shape() {
        // The Map pattern of Fig. 21: {containsKey(k), put(k,*)} with φ
        // n=64 yields 64 modes, each conflicting only with itself →
        // 64 singleton partitions ≈ 64-way lock striping.
        let schema = AdtSchema::builder("Map")
            .method("containsKey", 1)
            .method("put", 2)
            .build();
        let spec = CommutSpec::builder(schema.clone())
            .pair("containsKey", "containsKey", crate::spec::Cond::True)
            .differ("containsKey", 0, "put", 0)
            .differ("put", 0, "put", 0)
            .build();
        let mut b = ModeTable::builder(schema.clone(), spec, Phi::fib(64));
        let site = b.add_site(var_site(
            &schema,
            &[
                ("containsKey", &[SymArg::Var(0)]),
                ("put", &[SymArg::Var(0), SymArg::Star]),
            ],
        ));
        let t = b.build();
        assert_eq!(t.mode_count(), 64);
        assert_eq!(t.partition_count(), 64);
        for p in t.partition_sizes() {
            assert_eq!(*p, 1);
        }
        let m = t.select(site, &[Value(12345)]);
        assert!(!t.fc(m, m));
        assert_eq!(t.placement(m).local_conflicts, vec![t.placement(m).local]);
    }

    #[test]
    fn shared_symbolic_sets_dedup() {
        let spec = fig3b();
        let schema = spec.schema().clone();
        let mut b = ModeTable::builder(schema.clone(), spec, Phi::modulo(4));
        let s1 = b.add_site(var_site(&schema, &[("add", &[SymArg::Var(0)])]));
        let s2 = b.add_site(var_site(&schema, &[("add", &[SymArg::Var(0)])]));
        let t = b.build();
        // Both sites map onto the same canonical modes.
        assert_eq!(t.select(s1, &[Value(9)]), t.select(s2, &[Value(9)]));
        // add(αᵢ) commutes with everything here → all merged & free.
        assert_eq!(t.mode_count(), 1);
    }

    #[test]
    fn mode_covers_concrete_ops() {
        let spec = fig3b();
        let schema = spec.schema().clone();
        let phi = Phi::modulo(4);
        let mut b = ModeTable::builder(schema.clone(), spec, phi);
        let site = b.add_site(var_site(
            &schema,
            &[("add", &[SymArg::Var(0)]), ("remove", &[SymArg::Var(0)])],
        ));
        let t = b.build();
        let m = t.select(site, &[Value(6)]); // φ(6)=α2
        let add6 = Operation::new(schema.method("add"), vec![Value(6)]);
        let add2 = Operation::new(schema.method("add"), vec![Value(2)]); // also α2
        let add5 = Operation::new(schema.method("add"), vec![Value(5)]); // α1
        let size = Operation::new(schema.method("size"), vec![]);
        assert!(t.mode_covers(m, &add6));
        assert!(t.mode_covers(m, &add2)); // same abstract class is covered
        assert!(!t.mode_covers(m, &add5));
        assert!(!t.mode_covers(m, &size));
    }

    #[test]
    fn lock_all_mode_serializes() {
        let spec = fig3b();
        let schema = spec.schema().clone();
        let mut b = ModeTable::builder(schema.clone(), spec, Phi::modulo(4));
        let site = b.add_site_all();
        let t = b.build();
        let m = t.select(site, &[]);
        assert!(!t.fc(m, m), "lock(+) conflicts with itself");
        // Covers everything.
        let clear = Operation::new(schema.method("clear"), vec![]);
        assert!(t.mode_covers(m, &clear));
    }
}
