//! Runtime values flowing through ADT operations.
//!
//! The paper's formalization treats operation arguments as opaque members of
//! a set `Value` (§2.1). We model them as 64-bit integers with a reserved
//! `NULL` sentinel, which is sufficient to encode keys, elements, and ADT
//! instance identifiers in every benchmark of the evaluation.

use std::fmt;

/// A runtime value: an operation argument or return value.
///
/// `Value` is deliberately a thin wrapper over `u64` so that it is `Copy`
/// and free to hash; richer payloads (e.g. the 128-byte allocations of the
/// ComputeIfAbsent benchmark) live inside the ADT implementations and are
/// referenced by `Value` handles.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(pub u64);

impl Value {
    /// The distinguished "null" value (Java's `null` in the paper's examples).
    pub const NULL: Value = Value(u64::MAX);

    /// Boolean `true` encoded as a value.
    pub const TRUE: Value = Value(1);
    /// Boolean `false` encoded as a value.
    pub const FALSE: Value = Value(0);

    /// Encode a boolean.
    #[inline]
    pub fn from_bool(b: bool) -> Value {
        if b {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }

    /// Interpret this value as a boolean (non-zero and non-null are true).
    #[inline]
    pub fn as_bool(self) -> bool {
        self != Value::NULL && self.0 != 0
    }

    /// Whether this value is the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self == Value::NULL
    }
}

impl From<u64> for Value {
    #[inline]
    fn from(v: u64) -> Value {
        Value(v)
    }
}

impl From<i64> for Value {
    #[inline]
    fn from(v: i64) -> Value {
        Value(v as u64)
    }
}

impl From<bool> for Value {
    #[inline]
    fn from(v: bool) -> Value {
        Value::from_bool(v)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_distinct() {
        assert!(Value::NULL.is_null());
        assert!(!Value(0).is_null());
        assert!(!Value(7).is_null());
        assert_ne!(Value::NULL, Value(0));
    }

    #[test]
    fn bool_roundtrip() {
        assert!(Value::from_bool(true).as_bool());
        assert!(!Value::from_bool(false).as_bool());
        assert!(!Value::NULL.as_bool());
        assert_eq!(Value::from(true), Value::TRUE);
    }

    #[test]
    fn display_null() {
        assert_eq!(format!("{}", Value::NULL), "null");
        assert_eq!(format!("{}", Value(42)), "42");
        assert_eq!(format!("{:?}", Value(42)), "42");
    }

    #[test]
    fn from_integers() {
        assert_eq!(Value::from(5u64), Value(5));
        assert_eq!(Value::from(-1i64), Value(u64::MAX));
    }
}
