//! Equivalence and liveness checks for the packed-word admission fast
//! path (`mech.rs`): the packed representation must make *exactly* the
//! same admission, refusal and balance decisions as the wide
//! counters-under-mutex fallback, and its decrement-then-wake release
//! protocol must never lose a wakeup.

use proptest::prelude::*;
use semlock::mech::{ConflictSet, Mech, MechLayout, Wait, WaitStrategy};
use semlock::mode::{LockSiteId, ModeTable};
use semlock::phi::Phi;
use semlock::schema::set_schema;
use semlock::spec::CommutSpec;
use semlock::symbolic::{SymArg, SymOp, SymbolicSet};
use semlock::value::Value;
use semlock::{AcquireSpec, LockError, SemLock};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small random-but-symmetric conflict relation over `n` modes, seeded
/// so packed and wide runs replay the identical relation.
fn conflict_lists(n: usize, seed: u64) -> Vec<Vec<u32>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut conflicts = vec![Vec::new(); n];
    for a in 0..n {
        for b in a..n {
            if rng.gen_bool(0.4) {
                conflicts[a].push(b as u32);
                if b != a {
                    conflicts[b].push(a as u32);
                }
            }
        }
    }
    conflicts
}

/// One schedule step of the sequential equivalence check.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Non-blocking admission attempt.
    TryLock(u32),
    /// Release (may be a deliberate double unlock — both representations
    /// must refuse it identically).
    Unlock(u32),
    /// Bounded admission with an already-expired deadline: admits iff
    /// admissible right now, else times out without waiting.
    Expired(u32),
}

/// Replay one seeded schedule against both representations, asserting
/// identical outcomes at every step and identical final balance.
fn replay_schedule(modes: usize, steps: &[Step]) {
    let conflicts = conflict_lists(modes, 0xC0FFEE);
    let packed = Mech::with_layout(modes, WaitStrategy::Block, MechLayout::Packed);
    let wide = Mech::with_layout(modes, WaitStrategy::Block, MechLayout::Wide);
    for (i, &step) in steps.iter().enumerate() {
        match step {
            Step::TryLock(m) => {
                let cs = &conflicts[m as usize];
                let p = packed.try_lock(m, ConflictSet::new(cs));
                let w = wide.try_lock(m, ConflictSet::new(cs));
                assert_eq!(p, w, "step {i}: try_lock({m}) diverged");
            }
            Step::Unlock(m) => {
                let p = packed.unlock(m);
                let w = wide.unlock(m);
                assert_eq!(p, w, "step {i}: unlock({m}) diverged");
            }
            Step::Expired(m) => {
                let cs = &conflicts[m as usize];
                let deadline = Instant::now() - Duration::from_millis(1);
                let p =
                    packed.lock_deadline(m, ConflictSet::new(cs), deadline, &mut || Wait::Continue);
                let w =
                    wide.lock_deadline(m, ConflictSet::new(cs), deadline, &mut || Wait::Continue);
                assert_eq!(p, w, "step {i}: expired lock_deadline({m}) diverged");
            }
        }
        for m in 0..modes as u32 {
            assert_eq!(
                packed.count(m),
                wide.count(m),
                "step {i}: count({m}) diverged"
            );
        }
    }
    use std::sync::atomic::Ordering;
    let (ps, ws) = (packed.stats(), wide.stats());
    assert_eq!(
        ps.acquisitions.load(Ordering::Relaxed),
        ws.acquisitions.load(Ordering::Relaxed),
        "acquisition totals diverged"
    );
    assert_eq!(
        ps.timeouts.load(Ordering::Relaxed),
        ws.timeouts.load(Ordering::Relaxed),
        "timeout totals diverged"
    );
    assert_eq!(
        ps.underflows.load(Ordering::Relaxed),
        ws.underflows.load(Ordering::Relaxed),
        "underflow totals diverged"
    );
    assert_eq!(packed.held_total(), wide.held_total());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical seeded schedules drive packed and wide mechanisms to
    /// identical admission/refusal/balance outcomes, step by step.
    #[test]
    fn packed_and_wide_replay_identically(
        modes in 1usize..=8,
        raw in proptest::collection::vec((0u8..3, 0u32..8, any::<bool>()), 1..120),
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .map(|&(kind, m, _)| {
                let m = m % modes as u32;
                match kind {
                    0 => Step::TryLock(m),
                    1 => Step::Unlock(m),
                    _ => Step::Expired(m),
                }
            })
            .collect();
        replay_schedule(modes, &steps);
    }
}

/// Threaded flavour of the equivalence check: the same seeded chaos
/// schedule (per-thread RNG streams of lock/unlock pairs) runs against
/// both representations; totals must balance identically even though
/// interleavings differ.
#[test]
fn packed_and_wide_balance_under_threads() {
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::Ordering;
    const THREADS: usize = 4;
    const OPS: usize = 2_000;
    let modes = 6usize;
    let conflicts = Arc::new(conflict_lists(modes, 7));
    let mut totals = Vec::new();
    for layout in [MechLayout::Packed, MechLayout::Wide] {
        let mech = Arc::new(Mech::with_layout(modes, WaitStrategy::Block, layout));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let mech = Arc::clone(&mech);
                let conflicts = Arc::clone(&conflicts);
                scope.spawn(move || {
                    let mut rng = rand::rngs::SmallRng::seed_from_u64(t as u64);
                    for _ in 0..OPS {
                        let m = rng.gen_range(0..modes) as u32;
                        mech.lock(m, ConflictSet::new(&conflicts[m as usize]));
                        assert!(mech.unlock(m));
                    }
                });
            }
        });
        assert_eq!(mech.held_total(), 0, "{layout:?}: leaked holds");
        let s = mech.stats();
        assert_eq!(
            s.acquisitions.load(Ordering::Relaxed),
            (THREADS * OPS) as u64,
            "{layout:?}: acquisition count off"
        );
        assert_eq!(s.underflows.load(Ordering::Relaxed), 0);
        totals.push(s.acquisitions.load(Ordering::Relaxed));
    }
    assert_eq!(totals[0], totals[1]);
}

/// Targeted lost-wakeup regression: a releaser decrements while a waiter
/// is between its admission re-check and its park. The packed release
/// protocol (WAITERS bit in the count word + notify under the internal
/// mutex) must never let the notification slip into that window; if it
/// does, the ping-pong below deadlocks and the watchdog channel times out.
#[test]
fn release_wakeup_is_never_lost() {
    const ROUNDS: usize = 3_000;
    for layout in [MechLayout::Packed, MechLayout::Wide] {
        let mech = Arc::new(Mech::with_layout(1, WaitStrategy::Block, layout));
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let mech = Arc::clone(&mech);
                let done = done_tx.clone();
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        // Self-conflicting mode: exactly one thread in at a
                        // time; every release must wake the parked peer.
                        mech.lock(0, ConflictSet::new(&[0]));
                        assert!(mech.unlock(0));
                    }
                    done.send(()).unwrap();
                })
            })
            .collect();
        drop(done_tx);
        for _ in 0..workers.len() {
            done_rx
                .recv_timeout(Duration::from_secs(60))
                .unwrap_or_else(|_| {
                    panic!("{layout:?}: lost wakeup — ping-pong worker never finished")
                });
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(mech.held_total(), 0);
    }
}

// ---------------------------------------------------------------------
// The unified acquisition API, exercised over both representations.
// ---------------------------------------------------------------------

fn table() -> (Arc<ModeTable>, LockSiteId) {
    let s = set_schema();
    let spec = CommutSpec::builder(s.clone())
        .always("add", "add")
        .differ("add", 0, "remove", 0)
        .differ("add", 0, "contains", 0)
        .never("add", "size")
        .never("add", "clear")
        .always("remove", "remove")
        .differ("remove", 0, "contains", 0)
        .never("remove", "size")
        .never("remove", "clear")
        .always("contains", "contains")
        .always("contains", "size")
        .never("contains", "clear")
        .always("size", "size")
        .never("size", "clear")
        .always("clear", "clear")
        .build();
    let mut b = ModeTable::builder(s.clone(), spec, Phi::modulo(4));
    let site = b.add_site(SymbolicSet::new(vec![
        SymOp::new(s.method("add"), vec![SymArg::Var(0)]),
        SymOp::new(s.method("remove"), vec![SymArg::Var(0)]),
    ]));
    (b.build(), site)
}

fn locks_for_both_layouts(t: &Arc<ModeTable>) -> [SemLock; 2] {
    [
        SemLock::with_mech_layout(t.clone(), WaitStrategy::Block, MechLayout::Auto),
        SemLock::with_mech_layout(t.clone(), WaitStrategy::Block, MechLayout::Wide),
    ]
}

#[test]
fn acquire_spec_equivalences_hold_on_both_layouts() {
    let (t, site) = table();
    let m = t.select(site, &[Value(3)]); // self-conflicting mode
    for lock in locks_for_both_layouts(&t) {
        // Forever == lv.
        let mut txn = semlock::Txn::new();
        txn.acquire(&lock, &AcquireSpec::new(m)).unwrap();
        assert_eq!(txn.held_mode(&lock), Some(m));
        // Skip rule applies whatever the budget.
        txn.acquire(&lock, &AcquireSpec::new(m).no_wait()).unwrap();
        assert_eq!(txn.held_count(), 1);

        // DontWait == try_lv: zero-wait timeout on conflict.
        let mut other = semlock::Txn::new();
        let err = other
            .acquire(&lock, &AcquireSpec::new(m).no_wait())
            .unwrap_err();
        assert!(
            matches!(err, LockError::Timeout { waited, .. } if waited == Duration::ZERO),
            "{err}"
        );

        // Until == lv_deadline: bounded wait, then a timeout carrying the
        // waited duration.
        let start = Instant::now();
        let err = other
            .acquire(
                &lock,
                &AcquireSpec::new(m).timeout(Duration::from_millis(25)),
            )
            .unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }), "{err}");
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(other.held_count(), 0);

        drop(txn);
        assert_eq!(lock.total_holds(), 0);
    }
}

#[test]
fn acquire_reports_poison_on_both_layouts() {
    let (t, site) = table();
    let m = t.select(site, &[Value(1)]);
    for lock in locks_for_both_layouts(&t) {
        lock.poison();
        for spec in [
            AcquireSpec::new(m),
            AcquireSpec::new(m).no_wait(),
            AcquireSpec::new(m).timeout(Duration::from_millis(10)),
        ] {
            let mut txn = semlock::Txn::new();
            let err = txn.acquire(&lock, &spec).unwrap_err();
            assert!(err.is_poisoned(), "{spec:?}: {err}");
            assert_eq!(txn.held_count(), 0);
        }
        lock.clear_poison();
        let mut txn = semlock::Txn::new();
        txn.acquire(&lock, &AcquireSpec::new(m)).unwrap();
        drop(txn);
        assert_eq!(lock.total_holds(), 0);
    }
}

#[test]
fn no_watchdog_spec_still_times_out_but_never_aborts() {
    // Two transactions in a genuine cycle, both opted out of the
    // watchdog: neither may be chosen as a deadlock victim — both must
    // escape through their deadlines instead.
    let (t, site) = table();
    let a = Arc::new(SemLock::new(t.clone()));
    let b = Arc::new(SemLock::new(t.clone()));
    let m = t.select(site, &[Value(3)]);
    let gate = Arc::new(std::sync::Barrier::new(2));
    let mk = |hold: Arc<SemLock>, want: Arc<SemLock>, gate: Arc<std::sync::Barrier>| {
        std::thread::spawn(move || {
            let mut txn = semlock::Txn::new();
            txn.acquire(&hold, &AcquireSpec::new(m)).unwrap();
            gate.wait();
            let res = txn.acquire(
                &want,
                &AcquireSpec::new(m)
                    .timeout(Duration::from_millis(300))
                    .no_watchdog(),
            );
            drop(txn);
            res
        })
    };
    let h1 = mk(a.clone(), b.clone(), gate.clone());
    let h2 = mk(b.clone(), a.clone(), gate.clone());
    let r1 = h1.join().unwrap();
    let r2 = h2.join().unwrap();
    for r in [&r1, &r2] {
        if let Err(e) = r {
            assert!(
                matches!(e, LockError::Timeout { .. }),
                "opted-out waiter must only ever time out, got {e}"
            );
        }
    }
    assert!(
        r1.is_err() || r2.is_err(),
        "a genuine cycle cannot resolve without at least one timeout"
    );
    assert_eq!(a.total_holds() + b.total_holds(), 0);
}

#[test]
fn standalone_semlock_acquire_mirrors_lock_variants() {
    let (t, site) = table();
    let m = t.select(site, &[Value(3)]);
    for lock in locks_for_both_layouts(&t) {
        lock.acquire(&AcquireSpec::new(m)).unwrap();
        let err = lock.acquire(&AcquireSpec::new(m).no_wait()).unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }));
        let err = lock
            .acquire(&AcquireSpec::new(m).timeout(Duration::from_millis(20)))
            .unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }));
        lock.unlock(m);
        assert_eq!(lock.total_holds(), 0);
    }
}
