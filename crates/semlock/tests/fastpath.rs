//! Cross-backend conformance suite for the admission fast paths: every
//! registered [`Admission`] backend — the packed (64-bit) and Dwcas
//! (128-bit) words, the wide counters-under-mutex oracle, the
//! conflict-graph backend and the optimistic try-then-block hybrid —
//! must make *exactly* the same admission, refusal and balance
//! decisions as the wide oracle on identical schedules, and no backend
//! may lose a wakeup, leak a waiter node, or leave the waiter summary
//! behind.

use proptest::prelude::*;
use semlock::admission::{
    Admission, AdmissionBackend, ConflictGraphBackend, OptimisticHybridBackend,
};
use semlock::mech::{ConflictSet, Mech, MechLayout, Wait, WaitStrategy};
use semlock::mode::{LockSiteId, ModeTable};
use semlock::phi::Phi;
use semlock::schema::set_schema;
use semlock::spec::CommutSpec;
use semlock::symbolic::{SymArg, SymOp, SymbolicSet};
use semlock::value::Value;
use semlock::{AcquireSpec, LockError, SemLock};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small random-but-symmetric conflict relation over `n` modes, seeded
/// so packed and wide runs replay the identical relation.
fn conflict_lists(n: usize, seed: u64) -> Vec<Vec<u32>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut conflicts = vec![Vec::new(); n];
    for a in 0..n {
        for b in a..n {
            if rng.gen_bool(0.4) {
                conflicts[a].push(b as u32);
                if b != a {
                    conflicts[b].push(a as u32);
                }
            }
        }
    }
    conflicts
}

/// One schedule step of the sequential equivalence check.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Non-blocking admission attempt.
    TryLock(u32),
    /// Release (may be a deliberate double unlock — both representations
    /// must refuse it identically).
    Unlock(u32),
    /// Bounded admission with an already-expired deadline: admits iff
    /// admissible right now, else times out without waiting.
    Expired(u32),
}

/// Every registered admission backend that serves a partition of
/// `modes` modes with the given symmetric conflict relation, boxed
/// behind the [`Admission`] trait. The first element is always the wide
/// counters-under-mutex mech — the conformance oracle the others are
/// checked against. Word layouts with a mode-count ceiling (packed ≤ 8,
/// Dwcas ≤ 16) are skipped above their limit, exactly as the backend
/// config would refuse them.
fn conformance_backends(modes: usize, conflicts: &[Vec<u32>]) -> Vec<Box<dyn Admission>> {
    let mut backends: Vec<Box<dyn Admission>> = vec![Box::new(Mech::with_layout(
        modes,
        WaitStrategy::Block,
        MechLayout::Wide,
    ))];
    if modes <= semlock::mech::DWCAS_MODE_LIMIT {
        backends.push(Box::new(Mech::with_layout(
            modes,
            WaitStrategy::Block,
            MechLayout::Dwcas,
        )));
    }
    if modes <= semlock::mech::PACKED_MODE_LIMIT {
        backends.push(Box::new(Mech::with_layout(
            modes,
            WaitStrategy::Block,
            MechLayout::Packed,
        )));
    }
    backends.push(Box::new(ConflictGraphBackend::new(
        conflicts.to_vec(),
        WaitStrategy::Block,
    )));
    backends.push(Box::new(OptimisticHybridBackend::new(
        modes,
        WaitStrategy::Block,
    )));
    backends
}

/// Replay one seeded schedule against every registered backend that
/// serves `modes`, asserting identical outcomes at every step and
/// identical final balance. The wide counters-under-mutex mech is the
/// oracle; every other backend — lock-free word, conflict graph or
/// hybrid — must agree with it and, transitively, with each other.
fn replay_schedule(modes: usize, steps: &[Step]) {
    let conflicts = conflict_lists(modes, 0xC0FFEE);
    let backends = conformance_backends(modes, &conflicts);
    let (wide, others) = backends.split_first().unwrap();
    for (i, &step) in steps.iter().enumerate() {
        match step {
            Step::TryLock(m) => {
                let cs = &conflicts[m as usize];
                let w = wide.try_lock(m, ConflictSet::new(cs));
                for b in others {
                    let p = b.try_lock(m, ConflictSet::new(cs));
                    assert_eq!(p, w, "step {i}: {} try_lock({m}) diverged", b.name());
                }
            }
            Step::Unlock(m) => {
                let w = wide.unlock(m);
                for b in others {
                    let p = b.unlock(m);
                    assert_eq!(p, w, "step {i}: {} unlock({m}) diverged", b.name());
                }
            }
            Step::Expired(m) => {
                let cs = &conflicts[m as usize];
                let deadline = Instant::now() - Duration::from_millis(1);
                let w =
                    wide.lock_deadline(m, ConflictSet::new(cs), deadline, &mut || Wait::Continue);
                for b in others {
                    let p =
                        b.lock_deadline(m, ConflictSet::new(cs), deadline, &mut || Wait::Continue);
                    assert_eq!(
                        p,
                        w,
                        "step {i}: {} expired lock_deadline({m}) diverged",
                        b.name()
                    );
                }
            }
        }
        for b in others {
            for m in 0..modes as u32 {
                assert_eq!(
                    b.count(m),
                    wide.count(m),
                    "step {i}: {} count({m}) diverged",
                    b.name()
                );
            }
        }
    }
    use std::sync::atomic::Ordering;
    let ws = wide.stats();
    for b in others {
        let ps = b.stats();
        assert_eq!(
            ps.acquisitions.load(Ordering::Relaxed),
            ws.acquisitions.load(Ordering::Relaxed),
            "{}: acquisition totals diverged",
            b.name()
        );
        assert_eq!(
            ps.timeouts.load(Ordering::Relaxed),
            ws.timeouts.load(Ordering::Relaxed),
            "{}: timeout totals diverged",
            b.name()
        );
        assert_eq!(
            ps.underflows.load(Ordering::Relaxed),
            ws.underflows.load(Ordering::Relaxed),
            "{}: underflow totals diverged",
            b.name()
        );
        assert_eq!(b.held_total(), wide.held_total());
        assert!(
            !b.waiter_summary(),
            "{}: waiter summary left set by a sequential schedule",
            b.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical seeded schedules drive every registered backend —
    /// packed, Dwcas, wide, conflict-graph and optimistic-hybrid — to
    /// identical admission/refusal/balance outcomes, step by step. Mode
    /// counts above 8 drop packed (it cannot represent them) but keep
    /// exercising the rest, including modes in the high 64-bit half of
    /// the Dwcas word.
    #[test]
    fn all_backends_replay_identically(
        modes in 1usize..=16,
        raw in proptest::collection::vec((0u8..3, 0u32..16, any::<bool>()), 1..120),
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .map(|&(kind, m, _)| {
                let m = m % modes as u32;
                match kind {
                    0 => Step::TryLock(m),
                    1 => Step::Unlock(m),
                    _ => Step::Expired(m),
                }
            })
            .collect();
        replay_schedule(modes, &steps);
    }
}

/// Threaded flavour of the equivalence check: the same seeded chaos
/// schedule (per-thread RNG streams of lock/unlock pairs) runs against
/// every registered backend; totals must balance identically even
/// though interleavings differ.
#[test]
fn all_backends_balance_under_threads() {
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::Ordering;
    const THREADS: usize = 4;
    const OPS: usize = 2_000;
    let modes = 6usize;
    let conflicts = Arc::new(conflict_lists(modes, 7));
    for backend in conformance_backends(modes, &conflicts) {
        let backend: Arc<dyn Admission> = Arc::from(backend);
        let name = backend.name();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let backend = Arc::clone(&backend);
                let conflicts = Arc::clone(&conflicts);
                scope.spawn(move || {
                    let mut rng = rand::rngs::SmallRng::seed_from_u64(t as u64);
                    for _ in 0..OPS {
                        let m = rng.gen_range(0..modes) as u32;
                        backend.lock(m, ConflictSet::new(&conflicts[m as usize]));
                        assert!(backend.unlock(m));
                    }
                });
            }
        });
        assert_eq!(backend.held_total(), 0, "{name}: leaked holds");
        let s = backend.stats();
        assert_eq!(
            s.acquisitions.load(Ordering::Relaxed),
            (THREADS * OPS) as u64,
            "{name}: acquisition count off"
        );
        assert_eq!(s.underflows.load(Ordering::Relaxed), 0, "{name}: underflow");
        assert_eq!(
            backend.live_waiter_nodes(),
            0,
            "{name}: leaked waiter nodes"
        );
        assert!(!backend.waiter_summary(), "{name}: summary left published");
    }
}

/// Targeted lost-wakeup regression: a releaser decrements while a waiter
/// is between its admission re-check and its park. The claim-based
/// release protocol (summary bit in the count word + per-node handoff)
/// must never let the notification slip into that window; if it does,
/// the ping-pong below deadlocks and the watchdog channel times out.
#[test]
fn release_wakeup_is_never_lost() {
    const ROUNDS: usize = 3_000;
    for backend in conformance_backends(1, &[vec![0]]) {
        let backend: Arc<dyn Admission> = Arc::from(backend);
        let name = backend.name();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let backend = Arc::clone(&backend);
                let done = done_tx.clone();
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        // Self-conflicting mode: exactly one thread in at a
                        // time; every release must wake the parked peer.
                        backend.lock(0, ConflictSet::new(&[0]));
                        assert!(backend.unlock(0));
                    }
                    done.send(()).unwrap();
                })
            })
            .collect();
        drop(done_tx);
        for _ in 0..workers.len() {
            done_rx
                .recv_timeout(Duration::from_secs(60))
                .unwrap_or_else(|_| {
                    panic!("{name}: lost wakeup — ping-pong worker never finished")
                });
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(backend.held_total(), 0);
        assert_eq!(backend.live_waiter_nodes(), 0, "{name}: leaked nodes");
        assert!(!backend.waiter_summary(), "{name}: stale summary");
    }
}

/// ABA regression for the tagged waiter-stack head: drive the 16-bit
/// generation tag through several full wraps with push/claim cycles,
/// then verify a multi-node chain pushed *at the wrap boundary* is still
/// claimed and notified in full. A broken tag scheme (e.g. tag reuse
/// making a stale CAS succeed) shows up as a cut chain — a node that
/// never gets notified — or a refcount leak.
#[test]
fn claim_stack_survives_tag_wraparound() {
    use semlock::stack::WaiterStack;
    let stack = WaiterStack::new();
    // 2^16 bumps per wrap; each empty push/claim cycle bumps twice.
    // 34_000 cycles ≈ 1.04 wraps; run past two boundaries to be sure.
    let start_tag = stack.tag();
    let mut wrapped = false;
    let mut prev_tag = start_tag;
    for _ in 0..70_000 {
        let n = stack.alloc();
        n.prepare();
        stack.push(&n);
        stack.claim().wake_all();
        let t = stack.tag();
        if t < prev_tag {
            wrapped = true;
            // The wrap boundary: push a 3-node chain and claim it while
            // the tag arithmetic is mid-wrap.
            let (a, b, c) = (stack.alloc(), stack.alloc(), stack.alloc());
            for n in [&a, &b, &c] {
                n.prepare();
                stack.push(n);
            }
            stack.claim().wake_all();
            // All three must have been notified — park would hang on a
            // stranded (cut-chain) node, so bound it.
            for n in [&a, &b, &c] {
                assert!(
                    n.park_for(Duration::from_secs(10)),
                    "node missed its wakeup across the tag wrap"
                );
            }
        }
        prev_tag = t;
    }
    assert!(wrapped, "tag never wrapped — bump arithmetic changed?");
    assert!(stack.is_empty());
    assert_eq!(stack.live_nodes(), 0, "leaked nodes across the wrap");
}

/// `WaitBudget::DontWait` regression: a failing `try_lock` must be a
/// side-effect-free probe on every backend. The earlier packed
/// implementation routed it through the waiting path and transiently
/// published the WAITERS bit, which a concurrent releaser could consume
/// — waking nobody and losing the real waiter's handoff. Here a real
/// waiter parks, then a barrage of failing probes runs; the waiter's
/// published summary (waiter bit for the word layouts, the registered
/// waiter count for the graph backend) must survive untouched and the
/// waiter must still be woken by the actual release.
#[test]
fn dontwait_probe_is_side_effect_free() {
    // Two modes in mutual (but not self) conflict: the holder takes 0,
    // the waiter parks on 1, probes hammer 1.
    for backend in conformance_backends(2, &[vec![1], vec![0]]) {
        let backend: Arc<dyn Admission> = Arc::from(backend);
        let name = backend.name();
        backend.lock(0, ConflictSet::new(&[1]));
        let waiter = {
            let backend = Arc::clone(&backend);
            std::thread::spawn(move || {
                backend.lock(1, ConflictSet::new(&[0]));
                assert!(backend.unlock(1));
            })
        };
        // Wait until the waiter has actually published its node + bit.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !backend.waiter_summary() {
            assert!(Instant::now() < deadline, "{name}: waiter never parked");
            std::thread::yield_now();
        }
        for _ in 0..10_000 {
            assert!(
                !backend.try_lock(1, ConflictSet::new(&[0])),
                "{name}: probe admitted against a held conflict"
            );
            assert!(
                backend.waiter_summary(),
                "{name}: failing DontWait probe disturbed the waiter summary"
            );
        }
        assert!(backend.unlock(0));
        waiter.join().unwrap();
        assert_eq!(backend.held_total(), 0);
        assert_eq!(backend.live_waiter_nodes(), 0, "{name}: leaked nodes");
        assert!(!backend.waiter_summary(), "{name}: stale summary");
    }
}

/// A 16-mode partition — previously forced onto the counters-under-mutex
/// wide path — runs lock-free on the Dwcas word under `Auto` wherever
/// cmpxchg16b serves it, with modes spread across both 64-bit halves.
#[test]
fn sixteen_mode_partition_is_lock_free_under_auto() {
    use std::sync::atomic::Ordering;
    const THREADS: usize = 4;
    const OPS: usize = 1_500;
    let modes = 16usize;
    let mech = Arc::new(Mech::new(modes, WaitStrategy::Block));
    if semlock::dwcas::dwcas_available() {
        assert_eq!(mech.layout(), MechLayout::Dwcas, "Auto left 16 modes wide");
    } else {
        assert_eq!(mech.layout(), MechLayout::Wide);
    }
    let conflicts = Arc::new(conflict_lists(modes, 0xD1CE));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let mech = Arc::clone(&mech);
            let conflicts = Arc::clone(&conflicts);
            scope.spawn(move || {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::SmallRng::seed_from_u64(t as u64 ^ 0xABCD);
                for _ in 0..OPS {
                    // Bias towards the cross-half modes (7, 8, 15) so the
                    // high and low words of the DWCAS both churn.
                    let m = match rng.gen_range(0..6) {
                        0 => 7u32,
                        1 => 8,
                        2 => 15,
                        _ => rng.gen_range(0..modes) as u32,
                    };
                    mech.lock(m, ConflictSet::new(&conflicts[m as usize]));
                    assert!(mech.unlock(m));
                }
            });
        }
    });
    assert_eq!(mech.held_total(), 0);
    assert_eq!(
        mech.stats().acquisitions.load(Ordering::Relaxed),
        (THREADS * OPS) as u64
    );
    assert_eq!(mech.live_waiter_nodes(), 0);
    assert!(!mech.waiter_summary());
}

// ---------------------------------------------------------------------
// The unified acquisition API, exercised over every admission backend.
// ---------------------------------------------------------------------

fn table() -> (Arc<ModeTable>, LockSiteId) {
    let s = set_schema();
    let spec = CommutSpec::builder(s.clone())
        .always("add", "add")
        .differ("add", 0, "remove", 0)
        .differ("add", 0, "contains", 0)
        .never("add", "size")
        .never("add", "clear")
        .always("remove", "remove")
        .differ("remove", 0, "contains", 0)
        .never("remove", "size")
        .never("remove", "clear")
        .always("contains", "contains")
        .always("contains", "size")
        .never("contains", "clear")
        .always("size", "size")
        .never("size", "clear")
        .always("clear", "clear")
        .build();
    let mut b = ModeTable::builder(s.clone(), spec, Phi::modulo(4));
    let site = b.add_site(SymbolicSet::new(vec![
        SymOp::new(s.method("add"), vec![SymArg::Var(0)]),
        SymOp::new(s.method("remove"), vec![SymArg::Var(0)]),
    ]));
    (b.build(), site)
}

/// One `SemLock` per registered backend (plus `Auto`), skipping word
/// layouts whose mode ceiling the table's largest partition exceeds —
/// the same refusal the backend config applies.
fn locks_for_all_backends(t: &Arc<ModeTable>) -> Vec<SemLock> {
    let largest = t.partition_sizes().iter().copied().max().unwrap_or(0) as usize;
    std::iter::once(AdmissionBackend::Auto)
        .chain(AdmissionBackend::CONCRETE)
        .filter(|b| b.max_modes().is_none_or(|limit| largest <= limit))
        .map(|b| SemLock::with_backend(t.clone(), WaitStrategy::Block, b))
        .collect()
}

#[test]
fn acquire_spec_equivalences_hold_on_all_backends() {
    let (t, site) = table();
    let m = t.select(site, &[Value(3)]); // self-conflicting mode
    for lock in locks_for_all_backends(&t) {
        // Forever == lv.
        let mut txn = semlock::Txn::new();
        txn.acquire(&lock, &AcquireSpec::new(m)).unwrap();
        assert_eq!(txn.held_mode(&lock), Some(m));
        // Skip rule applies whatever the budget.
        txn.acquire(&lock, &AcquireSpec::new(m).no_wait()).unwrap();
        assert_eq!(txn.held_count(), 1);

        // DontWait == try_lv: zero-wait timeout on conflict.
        let mut other = semlock::Txn::new();
        let err = other
            .acquire(&lock, &AcquireSpec::new(m).no_wait())
            .unwrap_err();
        assert!(
            matches!(err, LockError::Timeout { waited, .. } if waited == Duration::ZERO),
            "{err}"
        );

        // Until == lv_deadline: bounded wait, then a timeout carrying the
        // waited duration.
        let start = Instant::now();
        let err = other
            .acquire(
                &lock,
                &AcquireSpec::new(m).timeout(Duration::from_millis(25)),
            )
            .unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }), "{err}");
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(other.held_count(), 0);

        drop(txn);
        assert_eq!(lock.total_holds(), 0);
    }
}

#[test]
fn acquire_reports_poison_on_all_backends() {
    let (t, site) = table();
    let m = t.select(site, &[Value(1)]);
    for lock in locks_for_all_backends(&t) {
        lock.poison();
        for spec in [
            AcquireSpec::new(m),
            AcquireSpec::new(m).no_wait(),
            AcquireSpec::new(m).timeout(Duration::from_millis(10)),
        ] {
            let mut txn = semlock::Txn::new();
            let err = txn.acquire(&lock, &spec).unwrap_err();
            assert!(err.is_poisoned(), "{spec:?}: {err}");
            assert_eq!(txn.held_count(), 0);
        }
        lock.clear_poison();
        let mut txn = semlock::Txn::new();
        txn.acquire(&lock, &AcquireSpec::new(m)).unwrap();
        drop(txn);
        assert_eq!(lock.total_holds(), 0);
    }
}

#[test]
fn no_watchdog_spec_still_times_out_but_never_aborts() {
    // Two transactions in a genuine cycle, both opted out of the
    // watchdog: neither may be chosen as a deadlock victim — both must
    // escape through their deadlines instead.
    let (t, site) = table();
    let a = Arc::new(SemLock::new(t.clone()));
    let b = Arc::new(SemLock::new(t.clone()));
    let m = t.select(site, &[Value(3)]);
    let gate = Arc::new(std::sync::Barrier::new(2));
    let mk = |hold: Arc<SemLock>, want: Arc<SemLock>, gate: Arc<std::sync::Barrier>| {
        std::thread::spawn(move || {
            let mut txn = semlock::Txn::new();
            txn.acquire(&hold, &AcquireSpec::new(m)).unwrap();
            gate.wait();
            let res = txn.acquire(
                &want,
                &AcquireSpec::new(m)
                    .timeout(Duration::from_millis(300))
                    .no_watchdog(),
            );
            drop(txn);
            res
        })
    };
    let h1 = mk(a.clone(), b.clone(), gate.clone());
    let h2 = mk(b.clone(), a.clone(), gate.clone());
    let r1 = h1.join().unwrap();
    let r2 = h2.join().unwrap();
    for r in [&r1, &r2] {
        if let Err(e) = r {
            assert!(
                matches!(e, LockError::Timeout { .. }),
                "opted-out waiter must only ever time out, got {e}"
            );
        }
    }
    assert!(
        r1.is_err() || r2.is_err(),
        "a genuine cycle cannot resolve without at least one timeout"
    );
    assert_eq!(a.total_holds() + b.total_holds(), 0);
}

#[test]
fn standalone_semlock_acquire_mirrors_lock_variants() {
    let (t, site) = table();
    let m = t.select(site, &[Value(3)]);
    for lock in locks_for_all_backends(&t) {
        lock.acquire(&AcquireSpec::new(m)).unwrap();
        let err = lock.acquire(&AcquireSpec::new(m).no_wait()).unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }));
        let err = lock
            .acquire(&AcquireSpec::new(m).timeout(Duration::from_millis(20)))
            .unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }));
        lock.unlock(m);
        assert_eq!(lock.total_holds(), 0);
    }
}
