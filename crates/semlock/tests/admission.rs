//! Model-checked admission safety: under arbitrary concurrent lock/unlock
//! traffic, no two transactions ever simultaneously hold non-commuting
//! modes on one instance — the central guarantee of §2.2.2.
//!
//! The monitor records each holder *after* its acquisition returns and
//! removes it *before* releasing, so the recorded set is always a subset
//! of the truly-held set; any conflicting pair observed in the recorded
//! set is therefore a real safety violation.

use parking_lot::Mutex;
use proptest::prelude::*;
use semlock::manager::SemLock;
use semlock::mode::{LockSiteId, ModeId, ModeTable};
use semlock::phi::Phi;
use semlock::schema::set_schema;
use semlock::spec::CommutSpec;
use semlock::symbolic::{SymArg, SymOp, SymbolicSet};
use semlock::value::Value;
use std::sync::Arc;

fn fig3b_spec() -> Arc<CommutSpec> {
    CommutSpec::builder(set_schema())
        .always("add", "add")
        .differ("add", 0, "remove", 0)
        .differ("add", 0, "contains", 0)
        .never("add", "size")
        .never("add", "clear")
        .always("remove", "remove")
        .differ("remove", 0, "contains", 0)
        .never("remove", "size")
        .never("remove", "clear")
        .always("contains", "contains")
        .always("contains", "size")
        .never("contains", "clear")
        .always("size", "size")
        .never("size", "clear")
        .always("clear", "clear")
        .build()
}

/// A table mixing keyed mutations, a global read-ish site, and the
/// serializing size/clear site — a worst-case mode zoo.
fn zoo_table(n: u16) -> (Arc<ModeTable>, Vec<LockSiteId>) {
    let schema = set_schema();
    let m = |s: &str| schema.method(s);
    let mut b = ModeTable::builder(schema.clone(), fig3b_spec(), Phi::modulo(n));
    let sites = vec![
        b.add_site(SymbolicSet::new(vec![
            SymOp::new(m("add"), vec![SymArg::Var(0)]),
            SymOp::new(m("remove"), vec![SymArg::Var(0)]),
        ])),
        b.add_site(SymbolicSet::new(vec![SymOp::new(
            m("contains"),
            vec![SymArg::Star],
        )])),
        b.add_site(SymbolicSet::new(vec![
            SymOp::new(m("size"), vec![]),
            SymOp::new(m("clear"), vec![]),
        ])),
        b.add_site(SymbolicSet::new(vec![SymOp::new(
            m("add"),
            vec![SymArg::Star],
        )])),
    ];
    (b.build(), sites)
}

struct Monitor {
    table: Arc<ModeTable>,
    held: Mutex<Vec<ModeId>>,
}

impl Monitor {
    fn enter(&self, mode: ModeId) {
        let mut held = self.held.lock();
        for &other in held.iter() {
            assert!(
                self.table.fc(mode, other),
                "ADMISSION VIOLATION: {} held together with {}",
                self.table.mode(mode).display(self.table.schema()),
                self.table.mode(other).display(self.table.schema()),
            );
        }
        held.push(mode);
    }

    fn exit(&self, mode: ModeId) {
        let mut held = self.held.lock();
        let pos = held.iter().position(|&m| m == mode).expect("mode recorded");
        held.swap_remove(pos);
    }
}

fn stress(n_phi: u16, threads: usize, iters: usize, seed: u64) {
    stress_backend(n_phi, threads, iters, seed, semlock::AdmissionBackend::Auto);
}

fn stress_backend(
    n_phi: u16,
    threads: usize,
    iters: usize,
    seed: u64,
    backend: semlock::AdmissionBackend,
) {
    use semlock::mech::WaitStrategy;
    let (table, sites) = zoo_table(n_phi);
    let lock = Arc::new(SemLock::with_backend(
        table.clone(),
        WaitStrategy::Block,
        backend,
    ));
    let monitor = Arc::new(Monitor {
        table: table.clone(),
        held: Mutex::new(Vec::new()),
    });
    std::thread::scope(|scope| {
        for t in 0..threads {
            let lock = lock.clone();
            let monitor = monitor.clone();
            let table = table.clone();
            let sites = sites.clone();
            scope.spawn(move || {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ t as u64);
                for _ in 0..iters {
                    let site = sites[rng.gen_range(0..sites.len())];
                    let key = Value(rng.gen_range(0..32u64));
                    let mode = table.select(site, &[key]);
                    lock.lock(mode);
                    monitor.enter(mode);
                    // Hold briefly, sometimes yielding to force interleaving.
                    if rng.gen_bool(0.2) {
                        std::thread::yield_now();
                    }
                    monitor.exit(mode);
                    lock.unlock(mode);
                }
            });
        }
    });
    assert!(monitor.held.lock().is_empty());
}

#[test]
fn admission_safety_stress_block() {
    stress(4, 6, 2_000, 0xFEED);
}

#[test]
fn admission_safety_small_phi_forces_conflicts() {
    // n = 1: every keyed mode collapses to one class — maximal conflicts.
    stress(1, 4, 1_500, 0xBEEF);
}

/// Exclusivity is a proof obligation of the `Admission` trait itself,
/// not of any particular counter layout: every registered backend must
/// uphold it under the same keyed chaos traffic. Word layouts whose
/// mode ceiling a partition exceeds are skipped, as the backend config
/// refuses them.
#[test]
fn admission_safety_every_backend() {
    use semlock::AdmissionBackend;
    let (table, _) = zoo_table(4);
    let largest = table.partition_sizes().iter().copied().max().unwrap_or(0) as usize;
    for backend in AdmissionBackend::CONCRETE {
        if backend.max_modes().is_some_and(|limit| largest > limit) {
            continue;
        }
        stress_backend(4, 4, 1_000, 0xD00D, backend);
    }
}

#[test]
fn admission_safety_spin_strategy() {
    use semlock::mech::WaitStrategy;
    let (table, sites) = zoo_table(4);
    let lock = Arc::new(SemLock::with_strategy(table.clone(), WaitStrategy::Spin));
    let monitor = Arc::new(Monitor {
        table: table.clone(),
        held: Mutex::new(Vec::new()),
    });
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let lock = lock.clone();
            let monitor = monitor.clone();
            let table = table.clone();
            let sites = sites.clone();
            scope.spawn(move || {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::SmallRng::seed_from_u64(t as u64);
                for _ in 0..1_000 {
                    let site = sites[rng.gen_range(0..sites.len())];
                    let mode = table.select(site, &[Value(rng.gen_range(0..16u64))]);
                    lock.lock(mode);
                    monitor.enter(mode);
                    monitor.exit(mode);
                    lock.unlock(mode);
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized schedule shapes: random φ sizes and thread/iteration
    /// mixes all preserve admission safety.
    #[test]
    fn admission_safety_randomized(
        n_phi in 1u16..8,
        threads in 2usize..5,
        seed in any::<u64>(),
    ) {
        stress(n_phi, threads, 400, seed);
    }
}

/// The §5.3 indistinguishable-mode merge must not change admissions:
/// merged tables admit a pair iff the unmerged commutativity agrees.
#[test]
fn merging_preserves_admission_decisions() {
    let (table, sites) = zoo_table(4);
    // For every pair of (site, key) footprints, F_c on the merged table
    // must equal the pairwise must-commute of the raw symbolic sets —
    // sampled over the key space.
    for &s1 in &sites {
        for &s2 in &sites {
            for k1 in 0..8u64 {
                for k2 in 0..8u64 {
                    let m1 = table.select(s1, &[Value(k1)]);
                    let m2 = table.select(s2, &[Value(k2)]);
                    let fc = table.fc(m1, m2);
                    // Ground truth via fresh unmerged modes.
                    let raw1 = table.mode(m1).clone();
                    let raw2 = table.mode(m2).clone();
                    let truth = semlock::commut::modes_must_commute(
                        table.spec(),
                        &raw1,
                        &raw2,
                        &table.phi(),
                    );
                    assert_eq!(fc, truth, "site pair ({s1:?},{s2:?}) keys ({k1},{k2})");
                }
            }
        }
    }
}

/// Read–write locking is the degenerate case of mode tables (§5.1 calls
/// modes "a generalization of the read-mode and the write-mode"): with a
/// spec where reads commute and writes conflict, the generated table *is*
/// a read–write lock — concurrent readers, exclusive writers.
#[test]
fn rwlock_emerges_from_modes() {
    use semlock::schema::AdtSchema;
    let schema = AdtSchema::builder("Cell")
        .method("read", 0)
        .method("write", 1)
        .build();
    let spec = CommutSpec::builder(schema.clone())
        .always("read", "read")
        .never("read", "write")
        .never("write", "write")
        .build();
    let mut b = ModeTable::builder(schema.clone(), spec, Phi::modulo(4));
    let r_site = b.add_site(SymbolicSet::new(vec![SymOp::new(
        schema.method("read"),
        vec![],
    )]));
    let w_site = b.add_site(SymbolicSet::new(vec![SymOp::new(
        schema.method("write"),
        vec![SymArg::Star],
    )]));
    let t = b.build();
    let r = t.select(r_site, &[]);
    let w = t.select(w_site, &[]);
    assert!(t.fc(r, r), "readers share");
    assert!(!t.fc(r, w), "writer excludes readers");
    assert!(!t.fc(w, w), "writers exclusive");

    // Behavioural check on the lock itself.
    let lock = SemLock::new(t.clone());
    lock.lock(r);
    assert!(lock.try_lock(r), "second reader admitted");
    assert!(!lock.try_lock(w), "writer blocked by readers");
    lock.unlock(r);
    lock.unlock(r);
    assert!(lock.try_lock(w));
    assert!(!lock.try_lock(r), "reader blocked by writer");
    lock.unlock(w);
}
