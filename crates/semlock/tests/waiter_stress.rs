//! Stress tests for the claim-based lock-free waiter stack — both the raw
//! `WaiterStack` (push / claim / park protocol in isolation) and the full
//! `Mech` admission path that drives it under every counter layout.
//!
//! The invariants at quiescence are absolute, not statistical: zero live
//! waiter nodes (every refcount returned), an empty stack, a clear summary
//! bit, and balanced hold counters. Any lost wakeup shows up as a hang
//! (bounded by the park timeouts) rather than a flaky assertion.
//!
//! `SEMLOCK_STRESS_ROUNDS` scales the per-thread round count so the CI
//! soak job can push much harder than the default `cargo test` run.

use semlock::mech::{Acquire, ConflictSet, Mech, MechLayout, Wait, WaitStrategy};
use semlock::stack::WaiterStack;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn stress_rounds() -> u64 {
    std::env::var("SEMLOCK_STRESS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400)
}

/// Raw stack protocol: N pusher threads each run M rounds of
/// prepare → push → park while a dedicated claimer thread drains the
/// stack until every round is accounted for. Exercises concurrent pushes
/// racing the claim CAS, immediate re-pushes overwriting `next`, and the
/// tag bump on both ends. Quiescence: no live nodes, empty stack.
#[test]
fn raw_stack_pushers_never_lose_a_wakeup() {
    const THREADS: u64 = 8;
    let rounds = stress_rounds();
    let stack = Arc::new(WaiterStack::new());
    let parked = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let claimer = {
        let stack = Arc::clone(&stack);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            // Keep sweeping until the pushers report completion, then one
            // final claim for any node pushed right before the flag flipped.
            while !done.load(Ordering::Acquire) {
                stack.claim().wake_all();
                std::thread::yield_now();
            }
            stack.claim().wake_all();
        })
    };

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let stack = Arc::clone(&stack);
            let parked = Arc::clone(&parked);
            scope.spawn(move || {
                for _ in 0..rounds {
                    let node = stack.alloc();
                    node.prepare();
                    stack.push(&node);
                    // The claimer loop is still running, so a bounded park
                    // only expires if a wakeup was genuinely lost.
                    assert!(
                        node.park_for(Duration::from_secs(30)),
                        "waiter round never woken: lost wakeup"
                    );
                    parked.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    done.store(true, Ordering::Release);
    claimer.join().unwrap();

    assert_eq!(parked.load(Ordering::Relaxed), THREADS * rounds);
    assert!(stack.is_empty(), "stack not drained at quiescence");
    assert_eq!(stack.live_nodes(), 0, "leaked waiter nodes");
}

/// A waiter that gives up (its bounded park expires and it walks away)
/// leaves a stale node behind; the next claim must sweep it without
/// notifying anyone twice or leaking the refcount. Interleaves quitters
/// with persistent waiters so sweeps happen mid-traffic.
#[test]
fn stale_nodes_are_swept_not_leaked() {
    let stack = Arc::new(WaiterStack::new());
    let rounds = stress_rounds().min(200);
    for _ in 0..rounds {
        // A quitter: pushes, never gets notified, abandons the node. Its
        // OwnedNode drop releases the waiter ref; the stack still holds
        // the membership ref until a claim sweeps it.
        {
            let quitter = stack.alloc();
            quitter.prepare();
            stack.push(&quitter);
            assert!(!quitter.park_for(Duration::from_millis(1)));
        }
        // A persistent waiter pushed on top of the stale entry: the claim
        // must walk through (and release) the stale node to reach it.
        let waiter = stack.alloc();
        waiter.prepare();
        stack.push(&waiter);
        stack.claim().wake_all();
        assert!(waiter.park_for(Duration::from_secs(10)));
    }
    assert!(stack.is_empty());
    assert_eq!(stack.live_nodes(), 0, "stale nodes leaked refcounts");
}

/// Full-mech handoff stress on every layout: every thread wants the same
/// self-conflicting mode, so all contended acquisitions park on the claim
/// stack and every release performs a handoff. A slice of the operations
/// use tight deadlines to interleave timed-out (stale) nodes with live
/// ones. Quiescence: balanced counters, zero nodes, clear summary, and
/// `acquisitions == successes` observed by the threads themselves.
#[test]
fn mech_handoff_stress_all_layouts() {
    const THREADS: u64 = 8;
    let rounds = stress_rounds();
    for layout in [MechLayout::Packed, MechLayout::Dwcas, MechLayout::Wide] {
        let mech = Arc::new(Mech::with_layout(2, WaitStrategy::Block, layout));
        let held = Arc::new(AtomicU64::new(0));
        let successes = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let mech = Arc::clone(&mech);
                let held = Arc::clone(&held);
                let successes = Arc::clone(&successes);
                scope.spawn(move || {
                    let cs = ConflictSet::new(&[0]);
                    for i in 0..rounds {
                        let acquired = if (t + i) % 4 == 0 {
                            // Tight deadline: often times out, leaving a
                            // stale node for later claims to sweep.
                            mech.lock_deadline(
                                0,
                                cs,
                                Instant::now() + Duration::from_micros(50),
                                &mut || Wait::Continue,
                            ) == Acquire::Acquired
                        } else {
                            mech.lock(0, cs);
                            true
                        };
                        if acquired {
                            // Mode 0 conflicts with itself: mutual exclusion.
                            assert_eq!(held.fetch_add(1, Ordering::AcqRel), 0);
                            assert_eq!(held.fetch_sub(1, Ordering::AcqRel), 1);
                            successes.fetch_add(1, Ordering::Relaxed);
                            assert!(mech.unlock(0), "{layout:?}: underflow");
                        }
                    }
                });
            }
        });
        assert_eq!(mech.held_total(), 0, "{layout:?}: holds leaked");
        assert_eq!(
            mech.live_waiter_nodes(),
            0,
            "{layout:?}: waiter nodes leaked"
        );
        assert!(!mech.waiter_summary(), "{layout:?}: stale summary bit");
        assert_eq!(
            mech.stats().acquisitions.load(Ordering::Relaxed),
            successes.load(Ordering::Relaxed),
            "{layout:?}: stats disagree with observed admissions"
        );
    }
}
