//! The ordering-aware visibility model.
//!
//! Modeled on the operational reading of the C++11 release/acquire
//! fragment (views over per-location store histories, in the style of
//! promising-semantics formalizations, minus promises):
//!
//! * every atomic location keeps its full **store history** (the
//!   modification order); each store message carries the **view** it
//!   publishes;
//! * every thread carries a view: for each location, the oldest store
//!   index it is still allowed to read. A *load* may read **any** store at
//!   or after that bound — the scheduler enumerates the choices, which is
//!   how stale Relaxed reads become explorable schedules;
//! * an **Acquire** load additionally joins the message view of the store
//!   it read (synchronizes-with); a **Release** store publishes the
//!   writer's view in its message;
//! * **RMWs always read the latest store** (atomicity: they sit at the
//!   tail of the modification order) and their message *inherits* the
//!   previous message's view — modeling release-sequence continuation:
//!   an acquire read of a Relaxed RMW still synchronizes with the Release
//!   store the sequence started from. A plain Relaxed store breaks the
//!   sequence (its message publishes nothing);
//! * **SeqCst** accesses additionally maintain a per-location bound
//!   `sc[loc]`: the index of the last SeqCst store to that location. A
//!   SeqCst load must read at or after that bound (the single total order
//!   S forbids reading past an SC store), and a SeqCst store/RMW advances
//!   it. The bound is per-location — S does *not* induce happens-before
//!   across locations — which keeps the classic store-buffering outcomes
//!   observable exactly when C++11 permits them, so weakening one SeqCst
//!   site of a store-buffering pair genuinely re-enables the bad
//!   interleaving for the checker to find.
//!
//! The model is slightly *weaker* than C++11 in one respect (SC fences
//! are not modeled; the protocol uses none) and never stronger on the
//! accesses the protocol performs, so a protocol that passes here has no
//! counterexample within the explored bounds, and every seeded mutant's
//! bug is expressible.

use crate::sync::Ordering;

/// A thread-/message-view: for each location, the smallest store index
/// the owner may still read. Missing entries mean 0 (the initial store).
#[derive(Clone, Default, Debug)]
pub struct View {
    bounds: Vec<usize>,
}

impl View {
    /// Bound for `loc` (0 when never constrained).
    pub fn get(&self, loc: usize) -> usize {
        self.bounds.get(loc).copied().unwrap_or(0)
    }

    /// Raise the bound for `loc` to at least `idx`.
    pub fn raise(&mut self, loc: usize, idx: usize) {
        if self.bounds.len() <= loc {
            self.bounds.resize(loc + 1, 0);
        }
        if self.bounds[loc] < idx {
            self.bounds[loc] = idx;
        }
    }

    /// Pointwise maximum with another view.
    pub fn join(&mut self, other: &View) {
        if self.bounds.len() < other.bounds.len() {
            self.bounds.resize(other.bounds.len(), 0);
        }
        for (loc, &b) in other.bounds.iter().enumerate() {
            if self.bounds[loc] < b {
                self.bounds[loc] = b;
            }
        }
    }
}

/// One message in a location's modification order.
#[derive(Clone, Debug)]
struct Store {
    val: u128,
    /// The view an acquire reader of this message joins.
    view: View,
}

/// All atomic locations of one execution.
#[derive(Default)]
pub struct Memory {
    locs: Vec<Vec<Store>>,
    /// Per-location index of the latest SeqCst store (see module docs).
    sc: View,
}

fn is_acq(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_rel(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_sc(o: Ordering) -> bool {
    matches!(o, Ordering::SeqCst)
}

impl Memory {
    /// Register a new location with an initial (view-free) store.
    pub fn alloc(&mut self, init: u128) -> usize {
        self.locs.push(vec![Store {
            val: init,
            view: View::default(),
        }]);
        self.locs.len() - 1
    }

    /// Index of the newest store to `loc`.
    pub fn latest(&self, loc: usize) -> usize {
        self.locs[loc].len() - 1
    }

    /// The newest value (used by the harness after all threads joined).
    pub fn latest_val(&self, loc: usize) -> u128 {
        self.locs[loc].last().unwrap().val
    }

    /// How many stores a load with thread view `view` may read from
    /// (`1` = only the latest). The scheduler turns this into a decision.
    pub fn load_choices(&self, view: &View, loc: usize, ord: Ordering) -> usize {
        let mut lb = view.get(loc);
        if is_sc(ord) {
            lb = lb.max(self.sc.get(loc));
        }
        self.latest(loc) - lb + 1
    }

    /// Perform a load reading the store `choice` steps *behind* the
    /// latest (`0` = the latest; the caller obtained the choice count from
    /// [`Memory::load_choices`]). Updates `view` per the ordering.
    pub fn load(&self, view: &mut View, loc: usize, ord: Ordering, choice: usize) -> u128 {
        let idx = self.latest(loc) - choice;
        debug_assert!(
            idx >= view
                .get(loc)
                .max(if is_sc(ord) { self.sc.get(loc) } else { 0 })
        );
        let msg = &self.locs[loc][idx];
        view.raise(loc, idx);
        if is_acq(ord) {
            view.join(&msg.view);
        }
        msg.val
    }

    /// Perform a plain store. Relaxed stores publish nothing (breaking any
    /// release sequence); Release/SeqCst stores publish the writer's view.
    pub fn store(&mut self, view: &mut View, loc: usize, val: u128, ord: Ordering) {
        let idx = self.locs[loc].len();
        view.raise(loc, idx);
        let mut msg_view = View::default();
        msg_view.raise(loc, idx);
        if is_rel(ord) {
            msg_view.join(view);
        }
        self.locs[loc].push(Store {
            val,
            view: msg_view,
        });
        if is_sc(ord) {
            self.sc.raise(loc, idx);
        }
    }

    /// Perform a read-modify-write: reads the latest store (atomicity),
    /// applies `f`, appends the result. Returns the previous value.
    pub fn rmw(
        &mut self,
        view: &mut View,
        loc: usize,
        ord: Ordering,
        f: impl FnOnce(u128) -> u128,
    ) -> u128 {
        let idx = self.latest(loc);
        let prev_val = self.locs[loc][idx].val;
        let prev_view = self.locs[loc][idx].view.clone();
        if is_acq(ord) {
            view.join(&prev_view);
        }
        let new_idx = idx + 1;
        view.raise(loc, new_idx);
        // Release-sequence continuation: the new message inherits the
        // previous message's view even when this RMW is Relaxed.
        let mut msg_view = prev_view;
        msg_view.raise(loc, new_idx);
        if is_rel(ord) {
            msg_view.join(view);
        }
        self.locs[loc].push(Store {
            val: f(prev_val),
            view: msg_view,
        });
        if is_sc(ord) {
            self.sc.raise(loc, new_idx);
        }
        prev_val
    }

    /// Compare-exchange: an RMW when the latest value equals `expected`,
    /// otherwise a latest-value load with the failure ordering. Returns
    /// `Ok(prev)` / `Err(latest)` like the std API.
    pub fn cas(
        &mut self,
        view: &mut View,
        loc: usize,
        expected: u128,
        new: u128,
        ok: Ordering,
        fail: Ordering,
    ) -> Result<u128, u128> {
        let idx = self.latest(loc);
        let cur = self.locs[loc][idx].val;
        if cur == expected {
            Ok(self.rmw(view, loc, ok, |_| new))
        } else {
            view.raise(loc, idx);
            if is_acq(fail) {
                let msg_view = self.locs[loc][idx].view.clone();
                view.join(&msg_view);
            }
            Err(cur)
        }
    }
}
