//! The `Mech` admission protocol instantiated over the model shims.
//!
//! [`PackedMech`] and [`WideMech`] are line-for-line transcriptions of
//! the blocking-strategy paths of `semlock::mech::Mech` (packed
//! one-word admission with the `WAITERS` handoff bit; wide per-mode
//! counters with the registered-waiter store-buffering protocol),
//! written against [`crate::sync`] instead of `semlock::sync`. The field
//! math (`field_shift`/`field_of`, `FIELD_MAX`, `WAITERS_BIT`) is
//! imported from `semlock` itself, and every memory ordering comes from
//! an [`OrderingProfile`] whose default is built from the named
//! constants in `semlock::mech::ordering` — so the protocol being
//! checked is the protocol that ships, not a copy that can drift.
//!
//! Orderings are *parameters* so the mutant tests can weaken exactly one
//! audited site at a time: [`OrderingProfile::mutants`] derives the
//! catalog from `semlock::mech::ORDERING_AUDIT`, and the checker must
//! find a counterexample for every entry.

use crate::sync::{AtomicU32, AtomicU64, Condvar, Mutex, Ordering};
use semlock::mech::{field_of, field_shift, ordering as ord, FIELD_MAX, WAITERS_BIT};
use std::sync::Arc;

/// Every audited memory ordering of the admission protocol, one field
/// per `ORDERING_AUDIT` site.
#[derive(Clone, Copy, Debug)]
pub struct OrderingProfile {
    /// `packed.admit.load`
    pub packed_admit_load: Ordering,
    /// `packed.admit.cas_ok`
    pub packed_admit_cas_ok: Ordering,
    /// `packed.admit.cas_fail`
    pub packed_admit_cas_fail: Ordering,
    /// `packed.release.load`
    pub packed_release_load: Ordering,
    /// `packed.release.cas_ok`
    pub packed_release_cas_ok: Ordering,
    /// `packed.release.cas_fail`
    pub packed_release_cas_fail: Ordering,
    /// `packed.waiter_bit.rmw`
    pub packed_waiter_bit_rmw: Ordering,
    /// `wide.waiter.rmw`
    pub wide_waiter_rmw: Ordering,
    /// `wide.conflict.load`
    pub wide_conflict_load: Ordering,
    /// `wide.release.rmw`
    pub wide_release_rmw: Ordering,
    /// `wide.waiters.load`
    pub wide_waiters_load: Ordering,
}

impl Default for OrderingProfile {
    /// The shipped protocol: every field is the corresponding
    /// `semlock::mech::ordering` constant.
    fn default() -> OrderingProfile {
        OrderingProfile {
            packed_admit_load: ord::PACKED_ADMIT_LOAD,
            packed_admit_cas_ok: ord::PACKED_ADMIT_CAS_OK,
            packed_admit_cas_fail: ord::PACKED_ADMIT_CAS_FAIL,
            packed_release_load: ord::PACKED_RELEASE_LOAD,
            packed_release_cas_ok: ord::PACKED_RELEASE_CAS_OK,
            packed_release_cas_fail: ord::PACKED_RELEASE_CAS_FAIL,
            packed_waiter_bit_rmw: ord::PACKED_WAITER_BIT_RMW,
            wide_waiter_rmw: ord::WIDE_WAITER_RMW,
            wide_conflict_load: ord::WIDE_CONFLICT_LOAD,
            wide_release_rmw: ord::WIDE_RELEASE_RMW,
            wide_waiters_load: ord::WIDE_WAITERS_LOAD,
        }
    }
}

impl OrderingProfile {
    /// Override one audited site by its `ORDERING_AUDIT` name.
    ///
    /// Panics on an unknown site so a renamed audit entry cannot
    /// silently turn a mutant test into a no-op.
    pub fn with_site(mut self, site: &str, o: Ordering) -> OrderingProfile {
        match site {
            "packed.admit.load" => self.packed_admit_load = o,
            "packed.admit.cas_ok" => self.packed_admit_cas_ok = o,
            "packed.admit.cas_fail" => self.packed_admit_cas_fail = o,
            "packed.release.load" => self.packed_release_load = o,
            "packed.release.cas_ok" => self.packed_release_cas_ok = o,
            "packed.release.cas_fail" => self.packed_release_cas_fail = o,
            "packed.waiter_bit.rmw" => self.packed_waiter_bit_rmw = o,
            "wide.waiter.rmw" => self.wide_waiter_rmw = o,
            "wide.conflict.load" => self.wide_conflict_load = o,
            "wide.release.rmw" => self.wide_release_rmw = o,
            "wide.waiters.load" => self.wide_waiters_load = o,
            other => panic!("unknown ORDERING_AUDIT site {other:?}"),
        }
        self
    }

    /// The seeded mutant catalog: one profile per `ORDERING_AUDIT` entry
    /// that declares a `mutant` ordering (the audited ordering weakened
    /// one notch). The checker must refute every one of these.
    pub fn mutants() -> Vec<(&'static str, OrderingProfile)> {
        semlock::mech::ORDERING_AUDIT
            .iter()
            .filter_map(|e| {
                e.mutant
                    .map(|m| (e.site, OrderingProfile::default().with_site(e.site, m)))
            })
            .collect()
    }
}

/// The packed (one-word) blocking mechanism over the model shims.
pub struct PackedMech {
    word: AtomicU64,
    internal: Mutex<()>,
    cond: Condvar,
    waiters: AtomicU32,
    profile: OrderingProfile,
}

impl PackedMech {
    /// A fresh mechanism (all counts zero). Must be called on a model
    /// thread (inside `Checker::check`).
    pub fn new(profile: OrderingProfile) -> Arc<PackedMech> {
        Arc::new(PackedMech {
            word: AtomicU64::new(0),
            internal: Mutex::new(()),
            cond: Condvar::new(),
            waiters: AtomicU32::new(0),
            profile,
        })
    }

    /// `Mech::try_admit_packed`, orderings from the profile.
    fn try_admit(&self, local: u32, mask: u64) -> bool {
        let one = 1u64 << field_shift(local);
        let mut cur = self.word.load(self.profile.packed_admit_load);
        loop {
            if cur & mask != 0 || field_of(cur, local) == FIELD_MAX {
                return false;
            }
            match self.word.compare_exchange_weak(
                cur,
                cur + one,
                self.profile.packed_admit_cas_ok,
                self.profile.packed_admit_cas_fail,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    fn waiter_begin(&self) {
        if self
            .waiters
            .fetch_add(1, self.profile.packed_waiter_bit_rmw)
            == 0
        {
            self.word
                .fetch_or(WAITERS_BIT, self.profile.packed_waiter_bit_rmw);
        }
    }

    fn waiter_end(&self) {
        if self
            .waiters
            .fetch_sub(1, self.profile.packed_waiter_bit_rmw)
            == 1
        {
            self.word
                .fetch_and(!WAITERS_BIT, self.profile.packed_waiter_bit_rmw);
        }
    }

    /// `Mech::lock`, packed blocking arm (fast path + park slow path).
    pub fn lock(&self, local: u32, mask: u64) {
        if self.try_admit(local, mask) {
            return;
        }
        let mut guard = self.internal.lock();
        loop {
            self.waiter_begin();
            if self.try_admit(local, mask) {
                self.waiter_end();
                break;
            }
            self.cond.wait(&mut guard);
            self.waiter_end();
        }
        drop(guard);
    }

    /// `Mech::release_packed`: CAS-decrement, refuse underflow, hand off
    /// a wakeup when the word carries `WAITERS_BIT`.
    pub fn unlock(&self, local: u32) -> bool {
        let one = 1u64 << field_shift(local);
        let mut cur = self.word.load(self.profile.packed_release_load);
        loop {
            if field_of(cur, local) == 0 {
                return false;
            }
            match self.word.compare_exchange_weak(
                cur,
                cur - one,
                self.profile.packed_release_cas_ok,
                self.profile.packed_release_cas_fail,
            ) {
                Ok(prev) => {
                    if prev & WAITERS_BIT != 0 {
                        let _g = self.internal.lock();
                        self.cond.notify_all();
                    }
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Latest packed word (harness asserts after all threads joined, when
    /// the joiner's view pins the latest store).
    pub fn word(&self) -> u64 {
        self.word.load(Ordering::Relaxed)
    }
}

/// The wide (per-mode counters) blocking mechanism over the model shims.
pub struct WideMech {
    counts: Vec<AtomicU32>,
    internal: Mutex<()>,
    cond: Condvar,
    waiters: AtomicU32,
    profile: OrderingProfile,
}

impl WideMech {
    /// A fresh mechanism with `modes` counters. Must be called on a model
    /// thread.
    pub fn new(modes: usize, profile: OrderingProfile) -> Arc<WideMech> {
        Arc::new(WideMech {
            counts: (0..modes).map(|_| AtomicU32::new(0)).collect(),
            internal: Mutex::new(()),
            cond: Condvar::new(),
            waiters: AtomicU32::new(0),
            profile,
        })
    }

    /// `Mech::conflicted_wide`, ordering from the profile.
    fn conflicted(&self, conflicts: &[u32]) -> bool {
        conflicts
            .iter()
            .any(|&c| self.counts[c as usize].load(self.profile.wide_conflict_load) > 0)
    }

    /// `Mech::lock`, wide blocking arm: register as waiter, check, park.
    pub fn lock(&self, local: u32, conflicts: &[u32]) {
        let mut guard = self.internal.lock();
        loop {
            self.waiters.fetch_add(1, self.profile.wide_waiter_rmw);
            if !self.conflicted(conflicts) {
                self.waiters.fetch_sub(1, self.profile.wide_waiter_rmw);
                break;
            }
            self.cond.wait(&mut guard);
            self.waiters.fetch_sub(1, self.profile.wide_waiter_rmw);
        }
        self.counts[local as usize].fetch_add(1, Ordering::Relaxed);
        drop(guard);
    }

    /// `Mech::unlock`, wide arm: checked CAS decrement, then the
    /// decrement-then-read-waiters half of the store-buffering pair.
    pub fn unlock(&self, local: u32) -> bool {
        let c = &self.counts[local as usize];
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            match c.compare_exchange_weak(
                cur,
                cur - 1,
                self.profile.wide_release_rmw,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        if self.waiters.load(self.profile.wide_waiters_load) > 0 {
            let _g = self.internal.lock();
            self.cond.notify_all();
        }
        true
    }

    /// Latest count of one mode (post-join asserts).
    pub fn count(&self, local: u32) -> u32 {
        self.counts[local as usize].load(Ordering::Relaxed)
    }
}
