//! The `Mech` admission protocol instantiated over the model shims.
//!
//! [`PackedMech`], [`DwcasMech`] and [`WideMech`] are line-for-line
//! transcriptions of the blocking-strategy paths of
//! `semlock::mech::Mech` (packed one-word and Dwcas double-word
//! admission with the claim-based waiter-stack handoff; wide per-mode
//! counters with the registered-waiter store-buffering protocol),
//! written against [`crate::sync`] instead of `semlock::sync`. The field
//! math (`field_shift`/`field_of`/`dwcas_field_of`, `FIELD_MAX`,
//! `WAITERS_BIT`, `DWCAS_WAITERS_BIT`) is imported from `semlock`
//! itself, and every memory ordering comes from an [`OrderingProfile`]
//! whose default is built from the named constants in
//! `semlock::mech::ordering` — so the protocol being checked is the
//! protocol that ships, not a copy that can drift.
//!
//! [`ModelStack`] transcribes `semlock::stack::WaiterStack` over a
//! fixed node pool: the head word packs `tag << 16 | (idx + 1)` (0 =
//! empty) instead of tagged 48-bit pointers, which keeps the protocol
//! shape — tagged-head Treiber push, whole-stack claim, next-read
//! **before** notify, per-node park flags — while staying inside the
//! model's integer store histories. The node *reference counts* of the
//! real stack are deliberately not transcribed: they manage reclamation
//! only, carry no protocol state, and no path reads data ordered by
//! them (the pool nodes here live for the whole execution).
//!
//! Orderings are *parameters* so the mutant tests can weaken exactly one
//! audited site at a time: [`OrderingProfile::mutants`] derives the
//! catalog from `semlock::mech::ORDERING_AUDIT`, and the checker must
//! find a counterexample for every entry.

use crate::sync::{AtomicU128, AtomicU32, AtomicU64, Condvar, Mutex, Ordering};
use semlock::mech::{
    dwcas_field_of, field_of, field_shift, ordering as ord, DWCAS_WAITERS_BIT, FIELD_MAX,
    WAITERS_BIT,
};
use std::sync::Arc;

/// Every audited memory ordering of the admission protocol, one field
/// per `ORDERING_AUDIT` site.
#[derive(Clone, Copy, Debug)]
pub struct OrderingProfile {
    /// `packed.admit.load`
    pub packed_admit_load: Ordering,
    /// `packed.admit.cas_ok`
    pub packed_admit_cas_ok: Ordering,
    /// `packed.admit.cas_fail`
    pub packed_admit_cas_fail: Ordering,
    /// `packed.release.load`
    pub packed_release_load: Ordering,
    /// `packed.release.cas_ok`
    pub packed_release_cas_ok: Ordering,
    /// `packed.release.cas_fail`
    pub packed_release_cas_fail: Ordering,
    /// `dwcas.admit.load`
    pub dwcas_admit_load: Ordering,
    /// `dwcas.admit.cas_ok`
    pub dwcas_admit_cas_ok: Ordering,
    /// `dwcas.admit.cas_fail`
    pub dwcas_admit_cas_fail: Ordering,
    /// `dwcas.release.load`
    pub dwcas_release_load: Ordering,
    /// `dwcas.release.cas_ok`
    pub dwcas_release_cas_ok: Ordering,
    /// `dwcas.release.cas_fail`
    pub dwcas_release_cas_fail: Ordering,
    /// `stack.push.head_load`
    pub stack_push_head_load: Ordering,
    /// `stack.push.next_store`
    pub stack_next_store: Ordering,
    /// `stack.push.cas_ok`
    pub stack_push_cas_ok: Ordering,
    /// `stack.push.cas_fail`
    pub stack_push_cas_fail: Ordering,
    /// `stack.summary.fetch_or`
    pub stack_summary_fetch_or: Ordering,
    /// `stack.summary.clear`
    pub stack_summary_clear: Ordering,
    /// `stack.peek.head_load`
    pub stack_peek_head_load: Ordering,
    /// `stack.claim.head_load`
    pub stack_claim_head_load: Ordering,
    /// `stack.claim.cas_ok`
    pub stack_claim_cas_ok: Ordering,
    /// `stack.claim.cas_fail`
    pub stack_claim_cas_fail: Ordering,
    /// `stack.claim.next_load`
    pub stack_next_load: Ordering,
    /// `wide.waiter.rmw`
    pub wide_waiter_rmw: Ordering,
    /// `wide.conflict.load`
    pub wide_conflict_load: Ordering,
    /// `wide.release.rmw`
    pub wide_release_rmw: Ordering,
    /// `wide.waiters.load`
    pub wide_waiters_load: Ordering,
}

impl Default for OrderingProfile {
    /// The shipped protocol: every field is the corresponding
    /// `semlock::mech::ordering` constant.
    fn default() -> OrderingProfile {
        OrderingProfile {
            packed_admit_load: ord::PACKED_ADMIT_LOAD,
            packed_admit_cas_ok: ord::PACKED_ADMIT_CAS_OK,
            packed_admit_cas_fail: ord::PACKED_ADMIT_CAS_FAIL,
            packed_release_load: ord::PACKED_RELEASE_LOAD,
            packed_release_cas_ok: ord::PACKED_RELEASE_CAS_OK,
            packed_release_cas_fail: ord::PACKED_RELEASE_CAS_FAIL,
            dwcas_admit_load: ord::DWCAS_ADMIT_LOAD,
            dwcas_admit_cas_ok: ord::DWCAS_ADMIT_CAS_OK,
            dwcas_admit_cas_fail: ord::DWCAS_ADMIT_CAS_FAIL,
            dwcas_release_load: ord::DWCAS_RELEASE_LOAD,
            dwcas_release_cas_ok: ord::DWCAS_RELEASE_CAS_OK,
            dwcas_release_cas_fail: ord::DWCAS_RELEASE_CAS_FAIL,
            stack_push_head_load: ord::STACK_PUSH_HEAD_LOAD,
            stack_next_store: ord::STACK_NEXT_STORE,
            stack_push_cas_ok: ord::STACK_PUSH_CAS_OK,
            stack_push_cas_fail: ord::STACK_PUSH_CAS_FAIL,
            stack_summary_fetch_or: ord::STACK_SUMMARY_FETCH_OR,
            stack_summary_clear: ord::STACK_SUMMARY_CLEAR,
            stack_peek_head_load: ord::STACK_PEEK_HEAD_LOAD,
            stack_claim_head_load: ord::STACK_CLAIM_HEAD_LOAD,
            stack_claim_cas_ok: ord::STACK_CLAIM_CAS_OK,
            stack_claim_cas_fail: ord::STACK_CLAIM_CAS_FAIL,
            stack_next_load: ord::STACK_NEXT_LOAD,
            wide_waiter_rmw: ord::WIDE_WAITER_RMW,
            wide_conflict_load: ord::WIDE_CONFLICT_LOAD,
            wide_release_rmw: ord::WIDE_RELEASE_RMW,
            wide_waiters_load: ord::WIDE_WAITERS_LOAD,
        }
    }
}

impl OrderingProfile {
    /// Override one audited site by its `ORDERING_AUDIT` name.
    ///
    /// Panics on an unknown site so a renamed audit entry cannot
    /// silently turn a mutant test into a no-op.
    pub fn with_site(mut self, site: &str, o: Ordering) -> OrderingProfile {
        match site {
            "packed.admit.load" => self.packed_admit_load = o,
            "packed.admit.cas_ok" => self.packed_admit_cas_ok = o,
            "packed.admit.cas_fail" => self.packed_admit_cas_fail = o,
            "packed.release.load" => self.packed_release_load = o,
            "packed.release.cas_ok" => self.packed_release_cas_ok = o,
            "packed.release.cas_fail" => self.packed_release_cas_fail = o,
            "dwcas.admit.load" => self.dwcas_admit_load = o,
            "dwcas.admit.cas_ok" => self.dwcas_admit_cas_ok = o,
            "dwcas.admit.cas_fail" => self.dwcas_admit_cas_fail = o,
            "dwcas.release.load" => self.dwcas_release_load = o,
            "dwcas.release.cas_ok" => self.dwcas_release_cas_ok = o,
            "dwcas.release.cas_fail" => self.dwcas_release_cas_fail = o,
            "stack.push.head_load" => self.stack_push_head_load = o,
            "stack.push.next_store" => self.stack_next_store = o,
            "stack.push.cas_ok" => self.stack_push_cas_ok = o,
            "stack.push.cas_fail" => self.stack_push_cas_fail = o,
            "stack.summary.fetch_or" => self.stack_summary_fetch_or = o,
            "stack.summary.clear" => self.stack_summary_clear = o,
            "stack.peek.head_load" => self.stack_peek_head_load = o,
            "stack.claim.head_load" => self.stack_claim_head_load = o,
            "stack.claim.cas_ok" => self.stack_claim_cas_ok = o,
            "stack.claim.cas_fail" => self.stack_claim_cas_fail = o,
            "stack.claim.next_load" => self.stack_next_load = o,
            "wide.waiter.rmw" => self.wide_waiter_rmw = o,
            "wide.conflict.load" => self.wide_conflict_load = o,
            "wide.release.rmw" => self.wide_release_rmw = o,
            "wide.waiters.load" => self.wide_waiters_load = o,
            other => panic!("unknown ORDERING_AUDIT site {other:?}"),
        }
        self
    }

    /// The seeded mutant catalog: one profile per `ORDERING_AUDIT` entry
    /// that declares a `mutant` ordering (the audited ordering weakened
    /// one notch). The checker must refute every one of these.
    pub fn mutants() -> Vec<(&'static str, OrderingProfile)> {
        semlock::mech::ORDERING_AUDIT
            .iter()
            .filter_map(|e| {
                e.mutant
                    .map(|m| (e.site, OrderingProfile::default().with_site(e.site, m)))
            })
            .collect()
    }
}

const WAITING: u32 = 0;
const NOTIFIED: u32 = 1;

/// One pool node of the model waiter stack.
struct ModelNode {
    /// Encoded index (`idx + 1`) of the next node down; 0 = bottom.
    next: AtomicU64,
    state: Mutex<u32>,
    cond: Condvar,
}

/// `semlock::stack::WaiterStack` over the model shims: a tagged-head
/// Treiber stack whose "pointers" are pool indices (see module docs).
pub struct ModelStack {
    /// `tag << 16 | (idx + 1)`; low bits 0 = empty.
    head: AtomicU64,
    nodes: Vec<ModelNode>,
    /// Bump allocator over the pool (reclamation is not transcribed).
    next_free: AtomicU32,
    profile: OrderingProfile,
}

const MODEL_TAG_SHIFT: u32 = 16;
const MODEL_PTR_MASK: u64 = (1 << MODEL_TAG_SHIFT) - 1;

fn model_pack(tag: u64, enc: u64) -> u64 {
    (tag << MODEL_TAG_SHIFT) | enc
}

fn model_tag(head: u64) -> u64 {
    head >> MODEL_TAG_SHIFT
}

fn model_ptr(head: u64) -> u64 {
    head & MODEL_PTR_MASK
}

impl ModelStack {
    /// A fresh stack with a pool of `capacity` nodes. Must be called on
    /// a model thread (inside `Checker::check`).
    pub fn new(capacity: usize, profile: OrderingProfile) -> ModelStack {
        ModelStack {
            head: AtomicU64::new(0),
            nodes: (0..capacity)
                .map(|_| ModelNode {
                    next: AtomicU64::new(0),
                    state: Mutex::new(WAITING),
                    cond: Condvar::new(),
                })
                .collect(),
            next_free: AtomicU32::new(0),
            profile,
        }
    }

    /// Allocate a pool node (the model's `WaiterStack::alloc`).
    pub fn alloc(&self) -> usize {
        let idx = self.next_free.fetch_add(1, Ordering::Relaxed) as usize;
        assert!(idx < self.nodes.len(), "model stack pool exhausted");
        idx
    }

    /// `OwnedNode::prepare`: reset to waiting before a (re-)push.
    pub fn prepare(&self, idx: usize) {
        *self.nodes[idx].state.lock() = WAITING;
    }

    /// `WaiterStack::push`: Treiber CAS prepend, bumping the tag.
    pub fn push(&self, idx: usize) {
        let enc = idx as u64 + 1;
        let mut cur = self.head.load(self.profile.stack_push_head_load);
        loop {
            self.nodes[idx]
                .next
                .store(model_ptr(cur), self.profile.stack_next_store);
            let new = model_pack(model_tag(cur).wrapping_add(1) & MODEL_PTR_MASK, enc);
            match self.head.compare_exchange_weak(
                cur,
                new,
                self.profile.stack_push_cas_ok,
                self.profile.stack_push_cas_fail,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// `WaiterStack::claim`: one CAS swaps the head to empty (tag
    /// bumped); returns the encoded chain start (0 = nothing claimed).
    pub fn claim(&self) -> u64 {
        let mut cur = self.head.load(self.profile.stack_claim_head_load);
        loop {
            if model_ptr(cur) == 0 {
                return 0;
            }
            let new = model_pack(model_tag(cur).wrapping_add(1) & MODEL_PTR_MASK, 0);
            match self.head.compare_exchange_weak(
                cur,
                new,
                self.profile.stack_claim_cas_ok,
                self.profile.stack_claim_cas_fail,
            ) {
                Ok(_) => return model_ptr(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// `WaiterStack::is_empty` (diagnostics only — the handoff never
    /// branches on it).
    pub fn is_empty(&self) -> bool {
        model_ptr(self.head.load(self.profile.stack_peek_head_load)) == 0
    }

    /// `ClaimedBatch::wake_all`: walk the claimed chain, reading each
    /// `next` **before** the notify (a notified waiter may re-push and
    /// overwrite it).
    pub fn wake_chain(&self, mut enc: u64) {
        while enc != 0 {
            let node = &self.nodes[enc as usize - 1];
            let next = node.next.load(self.profile.stack_next_load);
            {
                let mut st = node.state.lock();
                *st = NOTIFIED;
                node.cond.notify_all();
            }
            enc = next;
        }
    }

    /// `OwnedNode::park`: sleep until notified (immediately returns on a
    /// pre-notified node).
    pub fn park(&self, idx: usize) {
        let node = &self.nodes[idx];
        let mut st = node.state.lock();
        while *st != NOTIFIED {
            node.cond.wait(&mut st);
        }
    }
}

/// The packed (one-word) blocking mechanism over the model shims.
pub struct PackedMech {
    word: AtomicU64,
    stack: ModelStack,
    profile: OrderingProfile,
}

impl PackedMech {
    /// A fresh mechanism (all counts zero). Must be called on a model
    /// thread (inside `Checker::check`).
    pub fn new(profile: OrderingProfile) -> Arc<PackedMech> {
        Arc::new(PackedMech {
            word: AtomicU64::new(0),
            stack: ModelStack::new(16, profile),
            profile,
        })
    }

    /// `AdmitWord::try_admit` for the packed word, orderings from the
    /// profile. Public so the batched group probe ([`group_probe`]) can
    /// drive the same single-CAS admission the runtime fast pass uses.
    pub fn try_admit(&self, local: u32, mask: u64) -> bool {
        let one = 1u64 << field_shift(local);
        let mut cur = self.word.load(self.profile.packed_admit_load);
        loop {
            if cur & mask != 0 || field_of(cur, local) == FIELD_MAX {
                return false;
            }
            match self.word.compare_exchange_weak(
                cur,
                cur + one,
                self.profile.packed_admit_cas_ok,
                self.profile.packed_admit_cas_fail,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// `Mech::lock`, packed blocking arm: CAS fast path, then the
    /// claim-stack episode loop of `Mech::lock_stack_slow`.
    pub fn lock(&self, local: u32, mask: u64) {
        if self.try_admit(local, mask) {
            return;
        }
        let node = self.stack.alloc();
        loop {
            self.stack.prepare(node);
            self.stack.push(node);
            // `AdmitWord::summary_set_and_check`: re-check admission
            // from the word the fetch_or returned.
            let ret = self
                .word
                .fetch_or(WAITERS_BIT, self.profile.stack_summary_fetch_or);
            if ret & mask == 0 && field_of(ret, local) != FIELD_MAX && self.try_admit(local, mask) {
                return;
            }
            self.stack.park(node);
            if self.try_admit(local, mask) {
                return;
            }
        }
    }

    /// `Mech::handoff`: clear → claim → wake. Clearing first makes the
    /// summary bit self-stabilizing: a pusher's `fetch_or` ordered after
    /// the clear re-sets it with nothing left to erase it.
    fn handoff(&self) {
        self.word
            .fetch_and(!WAITERS_BIT, self.profile.stack_summary_clear);
        let chain = self.stack.claim();
        self.stack.wake_chain(chain);
    }

    /// `Mech::release_stack`: CAS-decrement, refuse underflow, hand off
    /// when the pre-decrement word carried `WAITERS_BIT`.
    pub fn unlock(&self, local: u32) -> bool {
        let one = 1u64 << field_shift(local);
        let mut cur = self.word.load(self.profile.packed_release_load);
        loop {
            if field_of(cur, local) == 0 {
                return false;
            }
            match self.word.compare_exchange_weak(
                cur,
                cur - one,
                self.profile.packed_release_cas_ok,
                self.profile.packed_release_cas_fail,
            ) {
                Ok(prev) => {
                    if prev & WAITERS_BIT != 0 {
                        self.handoff();
                    }
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// `AdmitWord::try_admit_many`: one combined admission attempt for
    /// several modes of this partition word. The union of the members'
    /// conflict masks is checked and every increment applied in a single
    /// CAS — a refused group leaves the word untouched, which is the
    /// all-or-nothing property the scenarios pin.
    pub fn try_admit_group(&self, members: &[(u32, u64)]) -> bool {
        let mut mask = 0u64;
        let mut add = 0u64;
        for &(local, m) in members {
            mask |= m;
            add += 1u64 << field_shift(local);
        }
        let mut cur = self.word.load(self.profile.packed_admit_load);
        loop {
            if cur & mask != 0 {
                return false;
            }
            for &(local, _) in members {
                let want = members.iter().filter(|x| x.0 == local).count() as u64;
                if field_of(cur, local) + want > FIELD_MAX {
                    return false;
                }
            }
            match self.word.compare_exchange_weak(
                cur,
                cur + add,
                self.profile.packed_admit_cas_ok,
                self.profile.packed_admit_cas_fail,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The [`GroupRollback::SkipHandoff`] mutant body: the checked
    /// CAS-decrement of `unlock` without the waiter handoff.
    pub fn unlock_no_handoff(&self, local: u32) -> bool {
        let one = 1u64 << field_shift(local);
        let mut cur = self.word.load(self.profile.packed_release_load);
        loop {
            if field_of(cur, local) == 0 {
                return false;
            }
            match self.word.compare_exchange_weak(
                cur,
                cur - one,
                self.profile.packed_release_cas_ok,
                self.profile.packed_release_cas_fail,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Latest packed word (harness asserts after all threads joined, when
    /// the joiner's view pins the latest store).
    pub fn word(&self) -> u64 {
        self.word.load(Ordering::Relaxed)
    }
}

/// How the batched group acquisition rolls back fast-passed members when
/// a later member's admission is refused
/// (`interp::compile`'s `AcquireBatch` / `semlock::txn::Txn::acquire_group`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroupRollback {
    /// The shipped protocol: reverse acquisition order, full `unlock`
    /// (decrement **plus** waiter handoff) of every member admitted so
    /// far — a waiter that parked behind a fast-passed member is handed
    /// the partition back.
    Correct,
    /// Mutant: decrement without the waiter handoff. A waiter parked
    /// behind a fast-passed member is never woken; the checker reports
    /// the lost wakeup as a deadlock.
    SkipHandoff,
    /// Mutant: also "roll back" the member whose admission was refused.
    /// That member's count was never incremented, so the decrement can
    /// steal a hold from a concurrent holder of the same mode — the
    /// victim's own release then underflows.
    IncludeFailed,
}

/// The batched multi-partition fast pass: probe each member's partition
/// word with one admission CAS, and on refusal roll back every
/// fast-passed member according to `rollback`. Returns whether the whole
/// group was admitted. (On refusal the runtime escalates to sequential
/// blocking acquisition; the scenarios drive that separately so the
/// rollback window itself stays small enough to check exhaustively.)
pub fn group_probe(members: &[(Arc<PackedMech>, u32, u64)], rollback: GroupRollback) -> bool {
    let mut passed = 0;
    while passed < members.len() {
        let (m, local, mask) = &members[passed];
        if !m.try_admit(*local, *mask) {
            break;
        }
        passed += 1;
    }
    if passed == members.len() {
        return true;
    }
    let upto = if rollback == GroupRollback::IncludeFailed {
        passed + 1
    } else {
        passed
    };
    for (m, local, _) in members[..upto].iter().rev() {
        if rollback == GroupRollback::SkipHandoff {
            m.unlock_no_handoff(*local);
        } else {
            m.unlock(*local);
        }
    }
    false
}

/// The Dwcas (double-word) blocking mechanism over the model shims:
/// identical protocol shape to [`PackedMech`], 128-bit admission word.
pub struct DwcasMech {
    word: AtomicU128,
    stack: ModelStack,
    profile: OrderingProfile,
}

impl DwcasMech {
    /// A fresh mechanism (all counts zero). Must be called on a model
    /// thread.
    pub fn new(profile: OrderingProfile) -> Arc<DwcasMech> {
        Arc::new(DwcasMech {
            word: AtomicU128::new(0),
            stack: ModelStack::new(16, profile),
            profile,
        })
    }

    /// `AdmitWord::try_admit` for the Dwcas word.
    fn try_admit(&self, local: u32, mask: u128) -> bool {
        let one = 1u128 << field_shift(local);
        let mut cur = self.word.load(self.profile.dwcas_admit_load);
        loop {
            if cur & mask != 0 || dwcas_field_of(cur, local) == FIELD_MAX as u128 {
                return false;
            }
            match self.word.compare_exchange_weak(
                cur,
                cur + one,
                self.profile.dwcas_admit_cas_ok,
                self.profile.dwcas_admit_cas_fail,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// `Mech::lock`, Dwcas blocking arm.
    pub fn lock(&self, local: u32, mask: u128) {
        if self.try_admit(local, mask) {
            return;
        }
        let node = self.stack.alloc();
        loop {
            self.stack.prepare(node);
            self.stack.push(node);
            let ret = self
                .word
                .fetch_or(DWCAS_WAITERS_BIT, self.profile.stack_summary_fetch_or);
            if ret & mask == 0
                && dwcas_field_of(ret, local) != FIELD_MAX as u128
                && self.try_admit(local, mask)
            {
                return;
            }
            self.stack.park(node);
            if self.try_admit(local, mask) {
                return;
            }
        }
    }

    /// `Mech::handoff` over the Dwcas word: clear → claim → wake.
    fn handoff(&self) {
        self.word
            .fetch_and(!DWCAS_WAITERS_BIT, self.profile.stack_summary_clear);
        let chain = self.stack.claim();
        self.stack.wake_chain(chain);
    }

    /// `Mech::release_stack` over the Dwcas word.
    pub fn unlock(&self, local: u32) -> bool {
        let one = 1u128 << field_shift(local);
        let mut cur = self.word.load(self.profile.dwcas_release_load);
        loop {
            if dwcas_field_of(cur, local) == 0 {
                return false;
            }
            match self.word.compare_exchange_weak(
                cur,
                cur - one,
                self.profile.dwcas_release_cas_ok,
                self.profile.dwcas_release_cas_fail,
            ) {
                Ok(prev) => {
                    if prev & DWCAS_WAITERS_BIT != 0 {
                        self.handoff();
                    }
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Latest Dwcas word (post-join asserts).
    pub fn word(&self) -> u128 {
        self.word.load(Ordering::Relaxed)
    }
}

/// The wide (per-mode counters) blocking mechanism over the model shims.
pub struct WideMech {
    counts: Vec<AtomicU32>,
    internal: Mutex<()>,
    cond: Condvar,
    waiters: AtomicU32,
    profile: OrderingProfile,
}

impl WideMech {
    /// A fresh mechanism with `modes` counters. Must be called on a model
    /// thread.
    pub fn new(modes: usize, profile: OrderingProfile) -> Arc<WideMech> {
        Arc::new(WideMech {
            counts: (0..modes).map(|_| AtomicU32::new(0)).collect(),
            internal: Mutex::new(()),
            cond: Condvar::new(),
            waiters: AtomicU32::new(0),
            profile,
        })
    }

    /// `Mech::conflicted_wide`, ordering from the profile.
    fn conflicted(&self, conflicts: &[u32]) -> bool {
        conflicts
            .iter()
            .any(|&c| self.counts[c as usize].load(self.profile.wide_conflict_load) > 0)
    }

    /// `Mech::lock`, wide blocking arm: register as waiter, check, park.
    pub fn lock(&self, local: u32, conflicts: &[u32]) {
        let mut guard = self.internal.lock();
        loop {
            self.waiters.fetch_add(1, self.profile.wide_waiter_rmw);
            if !self.conflicted(conflicts) {
                self.waiters.fetch_sub(1, self.profile.wide_waiter_rmw);
                break;
            }
            self.cond.wait(&mut guard);
            self.waiters.fetch_sub(1, self.profile.wide_waiter_rmw);
        }
        self.counts[local as usize].fetch_add(1, Ordering::Relaxed);
        drop(guard);
    }

    /// `Mech::unlock`, wide arm: checked CAS decrement, then the
    /// decrement-then-read-waiters half of the store-buffering pair.
    pub fn unlock(&self, local: u32) -> bool {
        let c = &self.counts[local as usize];
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            match c.compare_exchange_weak(
                cur,
                cur - 1,
                self.profile.wide_release_rmw,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        if self.waiters.load(self.profile.wide_waiters_load) > 0 {
            let _g = self.internal.lock();
            self.cond.notify_all();
        }
        true
    }

    /// Latest count of one mode (post-join asserts).
    pub fn count(&self, local: u32) -> u32 {
        self.counts[local as usize].load(Ordering::Relaxed)
    }
}

/// The conflict-graph admission backend
/// (`semlock::admission::ConflictGraphBackend`) over the model shims.
/// The protocol is the wide blocking protocol verbatim — it reuses the
/// `wide.*` ordering sites — with one difference mirroring the runtime
/// backend: the conflict check walks the precomputed adjacency row for
/// `local` instead of a caller-supplied conflict set.
pub struct GraphMech {
    counts: Vec<AtomicU32>,
    rows: Vec<Vec<u32>>,
    internal: Mutex<()>,
    cond: Condvar,
    waiters: AtomicU32,
    profile: OrderingProfile,
}

impl GraphMech {
    /// A fresh mechanism over symmetric adjacency `rows` (one row of
    /// conflicting locals per mode). Must be called on a model thread.
    pub fn new(rows: Vec<Vec<u32>>, profile: OrderingProfile) -> Arc<GraphMech> {
        Arc::new(GraphMech {
            counts: (0..rows.len()).map(|_| AtomicU32::new(0)).collect(),
            rows,
            internal: Mutex::new(()),
            cond: Condvar::new(),
            waiters: AtomicU32::new(0),
            profile,
        })
    }

    /// `ConflictGraphBackend::conflicted`, ordering from the profile.
    fn conflicted(&self, local: u32) -> bool {
        self.rows[local as usize]
            .iter()
            .any(|&c| self.counts[c as usize].load(self.profile.wide_conflict_load) > 0)
    }

    /// `ConflictGraphBackend::lock`, blocking arm: register as waiter,
    /// check the adjacency row, park.
    pub fn lock(&self, local: u32) {
        let mut guard = self.internal.lock();
        loop {
            self.waiters.fetch_add(1, self.profile.wide_waiter_rmw);
            if !self.conflicted(local) {
                self.waiters.fetch_sub(1, self.profile.wide_waiter_rmw);
                break;
            }
            self.cond.wait(&mut guard);
            self.waiters.fetch_sub(1, self.profile.wide_waiter_rmw);
        }
        self.counts[local as usize].fetch_add(1, Ordering::Relaxed);
        drop(guard);
    }

    /// `ConflictGraphBackend::unlock`: checked CAS decrement, then the
    /// decrement-then-read-waiters half of the store-buffering pair.
    pub fn unlock(&self, local: u32) -> bool {
        let c = &self.counts[local as usize];
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            match c.compare_exchange_weak(
                cur,
                cur - 1,
                self.profile.wide_release_rmw,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        if self.waiters.load(self.profile.wide_waiters_load) > 0 {
            let _g = self.internal.lock();
            self.cond.notify_all();
        }
        true
    }

    /// Latest count of one mode (post-join asserts).
    pub fn count(&self, local: u32) -> u32 {
        self.counts[local as usize].load(Ordering::Relaxed)
    }
}
