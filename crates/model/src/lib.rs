//! # model — a deterministic-schedule model checker for the semlock
//! admission protocol
//!
//! A small, vendored, loom-style checker: programs written against the
//! shim primitives in [`sync`] (`AtomicU64`, `AtomicU32`, `Mutex`,
//! `Condvar`, `thread`) are executed under a cooperative scheduler that
//! **exhaustively enumerates bounded interleavings**, including the
//! extra behaviors weak memory orderings permit — a `Relaxed` load may
//! return any store the C++11 model allows, not just the latest
//! ([`mem`] describes the visibility model).
//!
//! The subject under test is the `semlock::mech::Mech` admission
//! protocol: [`mech_model`] transcribes its packed and wide blocking
//! paths over the shims, importing the field math from `semlock` itself
//! and taking every memory ordering from the machine-checked
//! `semlock::mech::ORDERING_AUDIT` table — so the checked protocol and
//! the shipped protocol cannot drift apart silently.
//!
//! `tests/protocol.rs` verifies, across all schedules within the bounds:
//!
//! * **admission exclusivity** — conflicting modes are never held
//!   concurrently;
//! * **visibility** — data written under a mode is seen by the next
//!   conflicting holder (no lost updates);
//! * **no lost wakeups** — a parked waiter is always woken by the
//!   release that unblocks it (deadlock detection over the model);
//! * **release-count balance** — counters return to zero and double
//!   releases are refused;
//! * **mutant detection** — for every `ORDERING_AUDIT` entry carrying a
//!   seeded mutant (the ordering weakened one notch), the checker finds
//!   a counterexample. The unmutated protocol passes the same scenarios.
//!
//! ## Using the checker
//!
//! ```
//! use model::{sync, Checker};
//! use std::sync::Arc;
//!
//! let stats = Checker::new()
//!     .check(|| {
//!         let a = Arc::new(sync::AtomicU64::new(0));
//!         let b = a.clone();
//!         let t = sync::thread::spawn(move || {
//!             b.store(1, sync::Ordering::Release);
//!         });
//!         let _seen = a.load(sync::Ordering::Acquire);
//!         t.join();
//!         assert_eq!(a.load(sync::Ordering::Relaxed), 1);
//!     })
//!     .expect("no violation");
//! assert!(stats.schedules >= 2);
//! ```
//!
//! The closure runs once per schedule on fresh model state; assertion
//! failures, deadlocks and bound overruns come back as a
//! [`Violation`] carrying the reproducing decision trace.

#![warn(missing_docs)]

pub mod mech_model;
pub mod mem;
pub mod sched;
pub mod sync;

pub use sched::{check, Checker, Stats, Violation, ViolationKind};
