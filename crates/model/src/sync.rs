//! Shim concurrency primitives, API-compatible with `semlock::sync`.
//!
//! Code written against `semlock::sync::{AtomicU64, Mutex, Condvar,
//! thread}` compiles unchanged against this module; under the model every
//! operation becomes a schedule point plus a transition of the explicit
//! state in `crate::sched::ExecState`:
//!
//! * atomics go through the ordering-aware [`crate::mem::Memory`] — a
//!   Relaxed load may return any store the thread's view permits (the
//!   scheduler enumerates the choices);
//! * `Mutex`/`Condvar` follow the `parking_lot` API shape the runtime
//!   uses (`lock()` returns a guard directly, `Condvar::wait` takes
//!   `&mut MutexGuard`) and transfer views on unlock→lock (a host mutex
//!   is sequentially consistent synchronization, which is what
//!   `parking_lot` guarantees);
//! * `Condvar` has **no spurious wakeups** in the model: a waiter runs
//!   only after a notify. This under-approximates real condvars but only
//!   removes behaviors the protocol's wait loops already tolerate; lost
//!   wakeups — the bug class the checker hunts — remain fully
//!   expressible;
//! * `thread::spawn`/`JoinHandle::join` create model threads; the child
//!   inherits the parent's view and `join` acquires the child's final
//!   view (matching std's spawn/join synchronization).

use crate::sched::{with_ctx, Status};
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::Arc;

pub use std::sync::atomic::Ordering;

/// Model replacement for [`std::sync::atomic::AtomicU64`].
pub struct AtomicU64 {
    loc: usize,
}

/// Model replacement for [`std::sync::atomic::AtomicU32`].
///
/// Backed by the same 64-bit store history; values are masked to 32 bits
/// at the operation boundary so wrapping arithmetic matches the real
/// type.
pub struct AtomicU32 {
    loc: usize,
}

fn alloc(init: u128) -> usize {
    with_ctx(|ctx| ctx.shared.lock().mem.alloc(init))
}

fn atomic_load(loc: usize, ord: Ordering) -> u128 {
    with_ctx(|ctx| {
        ctx.shared.schedule(ctx.tid);
        let mut guard = ctx.shared.lock();
        let st = &mut *guard;
        let n = st.mem.load_choices(&st.threads[ctx.tid].view, loc, ord);
        // Choice 0 reads the latest store, so the first schedule explored
        // is the naturally coherent one.
        let choice = st.trace.decide(n);
        st.mem.load(&mut st.threads[ctx.tid].view, loc, ord, choice)
    })
}

fn atomic_store(loc: usize, val: u128, ord: Ordering) {
    with_ctx(|ctx| {
        ctx.shared.schedule(ctx.tid);
        let mut guard = ctx.shared.lock();
        let st = &mut *guard;
        st.mem.store(&mut st.threads[ctx.tid].view, loc, val, ord);
    })
}

fn atomic_rmw(loc: usize, ord: Ordering, f: impl FnOnce(u128) -> u128) -> u128 {
    with_ctx(|ctx| {
        ctx.shared.schedule(ctx.tid);
        let mut guard = ctx.shared.lock();
        let st = &mut *guard;
        st.mem.rmw(&mut st.threads[ctx.tid].view, loc, ord, f)
    })
}

fn atomic_cas(
    loc: usize,
    expected: u128,
    new: u128,
    ok: Ordering,
    fail: Ordering,
) -> Result<u128, u128> {
    with_ctx(|ctx| {
        ctx.shared.schedule(ctx.tid);
        let mut guard = ctx.shared.lock();
        let st = &mut *guard;
        st.mem
            .cas(&mut st.threads[ctx.tid].view, loc, expected, new, ok, fail)
    })
}

impl AtomicU64 {
    /// Allocate a fresh model location holding `v`.
    pub fn new(v: u64) -> AtomicU64 {
        AtomicU64 {
            loc: alloc(v as u128),
        }
    }

    /// Model load; a schedule point plus a staleness choice.
    pub fn load(&self, ord: Ordering) -> u64 {
        atomic_load(self.loc, ord) as u64
    }

    /// Model store.
    pub fn store(&self, v: u64, ord: Ordering) {
        atomic_store(self.loc, v as u128, ord)
    }

    /// Model `fetch_add` with u64 wrapping, like the real atomic.
    pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        atomic_rmw(self.loc, ord, |x| (x as u64).wrapping_add(v) as u128) as u64
    }

    /// Model `fetch_sub` with u64 wrapping.
    pub fn fetch_sub(&self, v: u64, ord: Ordering) -> u64 {
        atomic_rmw(self.loc, ord, |x| (x as u64).wrapping_sub(v) as u128) as u64
    }

    /// Model `fetch_or`.
    pub fn fetch_or(&self, v: u64, ord: Ordering) -> u64 {
        atomic_rmw(self.loc, ord, |x| ((x as u64) | v) as u128) as u64
    }

    /// Model `fetch_and`.
    pub fn fetch_and(&self, v: u64, ord: Ordering) -> u64 {
        atomic_rmw(self.loc, ord, |x| ((x as u64) & v) as u128) as u64
    }

    /// Model compare-exchange. Never fails spuriously (a strict subset of
    /// real `compare_exchange_weak` behaviors; the retry loops this
    /// models are insensitive to spurious failure).
    pub fn compare_exchange(
        &self,
        expected: u64,
        new: u64,
        ok: Ordering,
        fail: Ordering,
    ) -> Result<u64, u64> {
        atomic_cas(self.loc, expected as u128, new as u128, ok, fail)
            .map(|v| v as u64)
            .map_err(|v| v as u64)
    }

    /// Model weak compare-exchange (same as the strong form here).
    pub fn compare_exchange_weak(
        &self,
        expected: u64,
        new: u64,
        ok: Ordering,
        fail: Ordering,
    ) -> Result<u64, u64> {
        self.compare_exchange(expected, new, ok, fail)
    }
}

/// Model replacement for `semlock::sync::AtomicU128` (the double-width
/// admission word). The store history is natively 128-bit, so no masking
/// is needed; like the real type's fallback, every op is one atomic
/// transition of the word.
pub struct AtomicU128 {
    loc: usize,
}

impl AtomicU128 {
    /// Allocate a fresh model location holding `v`.
    pub fn new(v: u128) -> AtomicU128 {
        AtomicU128 { loc: alloc(v) }
    }

    /// Model load; a schedule point plus a staleness choice.
    pub fn load(&self, ord: Ordering) -> u128 {
        atomic_load(self.loc, ord)
    }

    /// Model store.
    pub fn store(&self, v: u128, ord: Ordering) {
        atomic_store(self.loc, v, ord)
    }

    /// Model `fetch_or`.
    pub fn fetch_or(&self, v: u128, ord: Ordering) -> u128 {
        atomic_rmw(self.loc, ord, |x| x | v)
    }

    /// Model `fetch_and`.
    pub fn fetch_and(&self, v: u128, ord: Ordering) -> u128 {
        atomic_rmw(self.loc, ord, |x| x & v)
    }

    /// Model compare-exchange (never spuriously failing, as above).
    pub fn compare_exchange(
        &self,
        expected: u128,
        new: u128,
        ok: Ordering,
        fail: Ordering,
    ) -> Result<u128, u128> {
        atomic_cas(self.loc, expected, new, ok, fail)
    }

    /// Model weak compare-exchange (same as the strong form here).
    pub fn compare_exchange_weak(
        &self,
        expected: u128,
        new: u128,
        ok: Ordering,
        fail: Ordering,
    ) -> Result<u128, u128> {
        atomic_cas(self.loc, expected, new, ok, fail)
    }
}

impl AtomicU32 {
    /// Allocate a fresh model location holding `v`.
    pub fn new(v: u32) -> AtomicU32 {
        AtomicU32 {
            loc: alloc(v as u128),
        }
    }

    /// Model load.
    pub fn load(&self, ord: Ordering) -> u32 {
        atomic_load(self.loc, ord) as u32
    }

    /// Model store.
    pub fn store(&self, v: u32, ord: Ordering) {
        atomic_store(self.loc, v as u128, ord)
    }

    /// Model `fetch_add` with u32 wrapping.
    pub fn fetch_add(&self, v: u32, ord: Ordering) -> u32 {
        atomic_rmw(self.loc, ord, |x| (x as u32).wrapping_add(v) as u128) as u32
    }

    /// Model `fetch_sub` with u32 wrapping.
    pub fn fetch_sub(&self, v: u32, ord: Ordering) -> u32 {
        atomic_rmw(self.loc, ord, |x| (x as u32).wrapping_sub(v) as u128) as u32
    }

    /// Model compare-exchange.
    pub fn compare_exchange(
        &self,
        expected: u32,
        new: u32,
        ok: Ordering,
        fail: Ordering,
    ) -> Result<u32, u32> {
        atomic_cas(self.loc, expected as u128, new as u128, ok, fail)
            .map(|v| v as u32)
            .map_err(|v| v as u32)
    }

    /// Model weak compare-exchange.
    pub fn compare_exchange_weak(
        &self,
        expected: u32,
        new: u32,
        ok: Ordering,
        fail: Ordering,
    ) -> Result<u32, u32> {
        self.compare_exchange(expected, new, ok, fail)
    }
}

/// Model replacement for `parking_lot::Mutex`.
pub struct Mutex<T> {
    id: usize,
    data: UnsafeCell<T>,
}

// Exclusion is enforced by the model scheduler, exactly as the real
// mutex enforces it for the real data.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

/// Guard returned by [`Mutex::lock`]; releases (and publishes the
/// holder's view) on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// Guards are tied to the acquiring thread, like the real type.
    _not_send: PhantomData<*const ()>,
}

impl<T> Mutex<T> {
    /// Register a model mutex.
    pub fn new(data: T) -> Mutex<T> {
        let id = with_ctx(|ctx| {
            let mut guard = ctx.shared.lock();
            let st = &mut *guard;
            st.mutexes.push(crate::sched::MutexCell {
                owner: None,
                view: crate::mem::View::default(),
            });
            st.mutexes.len() - 1
        });
        Mutex {
            id,
            data: UnsafeCell::new(data),
        }
    }

    /// Acquire (blocking): a schedule point, then either take the free
    /// mutex (joining the view its last holder published) or block until
    /// an unlock wakes us and retry.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        with_ctx(|ctx| {
            ctx.shared.schedule(ctx.tid);
            loop {
                {
                    let mut guard = ctx.shared.lock();
                    let st = &mut *guard;
                    if st.mutexes[self.id].owner.is_none() {
                        st.mutexes[self.id].owner = Some(ctx.tid);
                        let mv = st.mutexes[self.id].view.clone();
                        st.threads[ctx.tid].view.join(&mv);
                        break;
                    }
                }
                ctx.shared.block(ctx.tid, Status::BlockedMutex(self.id));
            }
        });
        MutexGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }
}

impl<T> MutexGuard<'_, T> {
    fn unlock_inner(&self) {
        with_ctx(|ctx| {
            let mut guard = ctx.shared.lock();
            let st = &mut *guard;
            if st.mutexes[self.lock.id].owner != Some(ctx.tid) {
                // Only reachable when a cancellation unwinds through a
                // `Condvar::wait` that had already released the mutex
                // (and perhaps another thread took it): the execution is
                // being torn down, leave the state alone.
                return;
            }
            st.mutexes[self.lock.id].owner = None;
            let tv = st.threads[ctx.tid].view.clone();
            st.mutexes[self.lock.id].view.join(&tv);
            for t in st.threads.iter_mut() {
                if t.status == Status::BlockedMutex(self.lock.id) {
                    t.status = Status::Runnable;
                }
            }
            // Deliberately no schedule point here: drop may run while an
            // assertion failure unwinds, and a context switch during
            // unwind would turn the panic we want to report into an
            // abort. Contenders get their turn at the next schedule
            // point of whoever runs.
        })
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.unlock_inner();
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

/// Model replacement for `parking_lot::Condvar` (no spurious wakeups —
/// see the module docs).
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// Register a model condvar.
    pub fn new() -> Condvar {
        let id = with_ctx(|ctx| {
            let mut guard = ctx.shared.lock();
            let st = &mut *guard;
            st.condvars += 1;
            st.condvars - 1
        });
        Condvar { id }
    }

    /// Atomically release the guard's mutex and sleep until notified,
    /// then reacquire before returning — the `parking_lot` signature.
    pub fn wait<T>(&self, mutex_guard: &mut MutexGuard<'_, T>) {
        let mutex_id = mutex_guard.lock.id;
        with_ctx(|ctx| {
            ctx.shared.schedule(ctx.tid);
            {
                // Release the mutex and go to sleep in one model step:
                // no notify can slip between them (that is the condvar
                // contract this models).
                let mut guard = ctx.shared.lock();
                let st = &mut *guard;
                debug_assert_eq!(st.mutexes[mutex_id].owner, Some(ctx.tid));
                st.mutexes[mutex_id].owner = None;
                let tv = st.threads[ctx.tid].view.clone();
                st.mutexes[mutex_id].view.join(&tv);
                for t in st.threads.iter_mut() {
                    if t.status == Status::BlockedMutex(mutex_id) {
                        t.status = Status::Runnable;
                    }
                }
            }
            ctx.shared.block(ctx.tid, Status::BlockedCond(self.id));
            // Notified: reacquire the mutex (contending normally).
            loop {
                {
                    let mut guard = ctx.shared.lock();
                    let st = &mut *guard;
                    if st.mutexes[mutex_id].owner.is_none() {
                        st.mutexes[mutex_id].owner = Some(ctx.tid);
                        let mv = st.mutexes[mutex_id].view.clone();
                        st.threads[ctx.tid].view.join(&mv);
                        return;
                    }
                }
                ctx.shared.block(ctx.tid, Status::BlockedMutex(mutex_id));
            }
        })
    }

    /// Wake every waiter (they still re-contend the mutex).
    pub fn notify_all(&self) {
        with_ctx(|ctx| {
            ctx.shared.schedule(ctx.tid);
            let mut guard = ctx.shared.lock();
            let st = &mut *guard;
            for t in st.threads.iter_mut() {
                if t.status == Status::BlockedCond(self.id) {
                    t.status = Status::Runnable;
                }
            }
        })
    }

    /// Wake one waiter (the lowest-id one; which waiter wins is already
    /// covered by schedule exploration elsewhere, so picking
    /// deterministically here keeps traces smaller).
    pub fn notify_one(&self) {
        with_ctx(|ctx| {
            ctx.shared.schedule(ctx.tid);
            let mut guard = ctx.shared.lock();
            let st = &mut *guard;
            if let Some(t) = st
                .threads
                .iter_mut()
                .find(|t| t.status == Status::BlockedCond(self.id))
            {
                t.status = Status::Runnable;
            }
        })
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// Model replacement for [`std::thread`] (spawn/join only).
pub mod thread {
    use super::*;
    use crate::sched::thread_main;
    use std::sync::Mutex as HostMutex;

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        tid: usize,
        result: Arc<HostMutex<Option<T>>>,
    }

    /// Spawn a model thread; the child starts with (inherits) the
    /// parent's view, like a real spawn synchronizes with the start of
    /// the child.
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (shared, child, result) = with_ctx(|ctx| {
            ctx.shared.schedule(ctx.tid);
            let view = {
                let st = ctx.shared.lock();
                st.threads[ctx.tid].view.clone()
            };
            let child = ctx.shared.register_thread(view);
            (ctx.shared.clone(), child, Arc::new(HostMutex::new(None)))
        });
        let r2 = result.clone();
        let sh2 = shared.clone();
        let h = std::thread::Builder::new()
            .name(format!("model-{child}"))
            .spawn(move || {
                thread_main(sh2, child, move || {
                    let v = f();
                    *r2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                })
            })
            .expect("spawn model thread");
        shared.push_handle(h);
        JoinHandle { tid: child, result }
    }

    impl<T> JoinHandle<T> {
        /// Block until the thread finishes; joins its final view and
        /// returns its result (like std, minus the `Result` wrapper —
        /// a child panic is a model violation, not a joinable error).
        pub fn join(self) -> T {
            with_ctx(|ctx| {
                ctx.shared.schedule(ctx.tid);
                loop {
                    {
                        let mut guard = ctx.shared.lock();
                        let st = &mut *guard;
                        if st.threads[self.tid].status == Status::Finished {
                            let fv = st.threads[self.tid].view.clone();
                            st.threads[ctx.tid].view.join(&fv);
                            break;
                        }
                    }
                    ctx.shared.block(ctx.tid, Status::BlockedJoin(self.tid));
                }
            });
            match self.result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                Some(v) => v,
                // The child finished without a result only if it was
                // cancelled mid-teardown; propagate the teardown.
                None => std::panic::panic_any(crate::sched::Cancelled),
            }
        }
    }
}
