//! The deterministic scheduler and DFS schedule explorer.
//!
//! Model threads are real OS threads, but exactly **one** runs at a time:
//! a per-thread gate passes a turn token. Every shim operation
//! ([`crate::sync`]) begins with a *schedule point* — the running thread
//! consults the decision trace to pick which runnable thread performs the
//! next operation — and the operation itself executes atomically against
//! the model state under a host mutex. Value choices (which store a
//! relaxed load may read, see [`crate::mem`]) are further decisions on
//! the same trace.
//!
//! The explorer enumerates traces depth-first: run one execution
//! following the recorded prefix (extending it with first choices),
//! then backtrack the deepest decision with an untried alternative.
//! Replay is exact because the model code is deterministic by
//! construction (no wall clock, no host randomness).
//!
//! Detected violations:
//! * **panic** — an assertion in the modeled code failed (e.g. mutual
//!   exclusion or a visibility assert);
//! * **deadlock** — no thread is runnable but some are blocked. This is
//!   the lost-wakeup detector: a waiter parked forever because a release
//!   skipped its notify;
//! * **step / schedule bounds** — the exploration outgrew its budget
//!   (reported as an error, never silently truncated).

use crate::mem::{Memory, View};
use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering as HostOrd};
use std::sync::{Arc, Condvar as HostCondvar, Mutex as HostMutex, MutexGuard as HostGuard, Once};

/// Panic payload used to unwind model threads when an execution is torn
/// down (violation found elsewhere, or bound exceeded).
pub(crate) struct Cancelled;

/// One decision: `(chosen, arity)`.
pub(crate) type Decision = (u32, u32);

/// The replayable decision trace of one execution.
#[derive(Default)]
pub(crate) struct Trace {
    prefix: Vec<Decision>,
    pos: usize,
}

impl Trace {
    fn with_prefix(prefix: Vec<Decision>) -> Trace {
        Trace { prefix, pos: 0 }
    }

    /// Resolve the next decision among `n` alternatives: replay the
    /// prefix, then extend with the first alternative. Unary decisions
    /// are not recorded (they cannot be backtracked).
    pub(crate) fn decide(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        if n == 1 {
            return 0;
        }
        let c = if self.pos < self.prefix.len() {
            let (c, rn) = self.prefix[self.pos];
            assert_eq!(
                rn as usize, n,
                "model execution diverged from its replay prefix (nondeterministic model code?)"
            );
            c as usize
        } else {
            self.prefix.push((0, n as u32));
            0
        };
        self.pos += 1;
        c
    }
}

/// Move `prefix` to the next unexplored trace; `false` when exhausted.
fn backtrack(prefix: &mut Vec<Decision>) -> bool {
    while let Some((c, n)) = prefix.pop() {
        if c + 1 < n {
            prefix.push((c + 1, n));
            return true;
        }
    }
    false
}

/// Why a [`Checker::check`] run failed.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ViolationKind {
    /// An assertion inside the modeled code failed on some schedule.
    Panic(String),
    /// No runnable threads, but these (0-indexed) threads are blocked —
    /// a deadlock or lost wakeup.
    Deadlock(Vec<usize>),
    /// One execution exceeded the per-execution step bound (livelock or
    /// an undersized [`Checker::max_steps`]).
    StepBound,
    /// The exploration exceeded [`Checker::max_schedules`] before
    /// completing; raise the bound or shrink the scenario.
    ScheduleBound,
}

/// A failed check: the kind, the 1-indexed schedule it surfaced on, and
/// the decision trace that reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Which schedule (1-indexed execution count) exposed it.
    pub schedule: usize,
    /// The decision trace of the failing execution.
    pub trace: Vec<Decision>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ViolationKind::Panic(m) => write!(f, "schedule {}: panic: {m}", self.schedule),
            ViolationKind::Deadlock(t) => write!(
                f,
                "schedule {}: deadlock / lost wakeup; blocked threads {t:?}",
                self.schedule
            ),
            ViolationKind::StepBound => {
                write!(f, "schedule {}: step bound exceeded", self.schedule)
            }
            ViolationKind::ScheduleBound => write!(f, "schedule bound exceeded"),
        }
    }
}

/// Exploration statistics of a passing check.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Executions explored.
    pub schedules: usize,
    /// Deepest decision trace seen.
    pub max_depth: usize,
}

/// What a model thread is currently doing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCond(usize),
    BlockedJoin(usize),
    Finished,
}

/// Turn-token gate: one per model thread.
struct Gate {
    flag: HostMutex<bool>,
    cv: HostCondvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            flag: HostMutex::new(false),
            cv: HostCondvar::new(),
        })
    }

    fn grant(&self) {
        let mut f = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        *f = true;
        self.cv.notify_one();
    }

    fn wait(&self) {
        let mut f = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        while !*f {
            f = self.cv.wait(f).unwrap_or_else(|e| e.into_inner());
        }
        *f = false;
    }
}

pub(crate) struct ThreadCell {
    pub(crate) status: Status,
    pub(crate) view: View,
    gate: Arc<Gate>,
}

pub(crate) struct MutexCell {
    pub(crate) owner: Option<usize>,
    pub(crate) view: View,
}

/// The mutable model state of one execution (under the host mutex).
pub(crate) struct ExecState {
    pub(crate) mem: Memory,
    pub(crate) threads: Vec<ThreadCell>,
    pub(crate) mutexes: Vec<MutexCell>,
    pub(crate) condvars: usize,
    pub(crate) trace: Trace,
    steps: usize,
    preemptions: usize,
    violation: Option<Violation>,
}

/// Everything shared between the controller and the model threads of one
/// execution.
pub(crate) struct ExecShared {
    pub(crate) state: HostMutex<ExecState>,
    cancelling: AtomicBool,
    done: Gate,
    handles: HostMutex<Vec<std::thread::JoinHandle<()>>>,
    max_steps: usize,
    max_preemptions: Option<usize>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The current model thread's identity, installed by its wrapper.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) shared: Arc<ExecShared>,
    pub(crate) tid: usize,
}

/// Run `f` with the current model context; panics when a shim primitive
/// is used outside [`Checker::check`].
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b
            .as_ref()
            .expect("model::sync primitive used outside model::Checker::check");
        f(ctx)
    })
}

impl ExecShared {
    fn new(max_steps: usize, max_preemptions: Option<usize>, prefix: Vec<Decision>) -> ExecShared {
        ExecShared {
            state: HostMutex::new(ExecState {
                mem: Memory::default(),
                threads: Vec::new(),
                mutexes: Vec::new(),
                condvars: 0,
                trace: Trace::with_prefix(prefix),
                steps: 0,
                preemptions: 0,
                violation: None,
            }),
            cancelling: AtomicBool::new(false),
            done: Gate {
                flag: HostMutex::new(false),
                cv: HostCondvar::new(),
            },
            handles: HostMutex::new(Vec::new()),
            max_steps,
            max_preemptions,
        }
    }

    pub(crate) fn lock(&self) -> HostGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn push_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    fn check_cancel(&self) {
        if self.cancelling.load(HostOrd::SeqCst) {
            std::panic::panic_any(Cancelled);
        }
    }

    /// Register a model thread; returns its id.
    pub(crate) fn register_thread(&self, view: View) -> usize {
        let mut st = self.lock();
        st.threads.push(ThreadCell {
            status: Status::Runnable,
            view,
            gate: Gate::new(),
        });
        st.threads.len() - 1
    }

    /// The schedule point at the head of every shim operation: decide who
    /// performs the next step, possibly context-switching away.
    pub(crate) fn schedule(self: &Arc<Self>, tid: usize) {
        self.check_cancel();
        let mut guard = self.lock();
        let st = &mut *guard;
        st.steps += 1;
        if st.steps > self.max_steps {
            let v = Violation {
                kind: ViolationKind::StepBound,
                schedule: 0,
                trace: st.trace.prefix.clone(),
            };
            st.violation.get_or_insert(v);
            self.cancel_locked(st);
            self.signal_done();
            drop(guard);
            std::panic::panic_any(Cancelled);
        }
        // Candidates with the current thread first: choice 0 continues
        // without a context switch, so the first DFS execution is the
        // natural sequential one and preemption budgets are spent only
        // on explicitly backtracked branches.
        let mut candidates: Vec<usize> = vec![tid];
        candidates.extend(
            st.threads
                .iter()
                .enumerate()
                .filter(|(i, t)| *i != tid && t.status == Status::Runnable)
                .map(|(i, _)| i),
        );
        debug_assert_eq!(st.threads[tid].status, Status::Runnable);
        let capped = matches!(self.max_preemptions, Some(maxp) if st.preemptions >= maxp);
        let next = if capped {
            tid
        } else {
            candidates[st.trace.decide(candidates.len())]
        };
        if next == tid {
            return;
        }
        st.preemptions += 1;
        let next_gate = st.threads[next].gate.clone();
        let my_gate = st.threads[tid].gate.clone();
        drop(guard);
        next_gate.grant();
        my_gate.wait();
        self.check_cancel();
    }

    /// Block the current thread with `status`, hand the token to someone
    /// runnable, park until rescheduled. The waker is responsible for
    /// setting the status back to `Runnable` before this thread can be
    /// granted again.
    pub(crate) fn block(self: &Arc<Self>, tid: usize, status: Status) {
        let mut guard = self.lock();
        let st = &mut *guard;
        st.threads[tid].status = status;
        let my_gate = st.threads[tid].gate.clone();
        self.pass_token_locked(st);
        drop(guard);
        my_gate.wait();
        self.check_cancel();
    }

    /// Pick a runnable thread and grant it the token; if none is
    /// runnable, either the execution is complete (all finished) or we
    /// found a deadlock.
    fn pass_token_locked(&self, st: &mut ExecState) {
        if self.cancelling.load(HostOrd::SeqCst) {
            return;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                self.signal_done();
            } else {
                let blocked: Vec<usize> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, _)| i)
                    .collect();
                let v = Violation {
                    kind: ViolationKind::Deadlock(blocked),
                    schedule: 0,
                    trace: st.trace.prefix.clone(),
                };
                st.violation.get_or_insert(v);
                self.cancel_locked(st);
                self.signal_done();
            }
        } else {
            let next = runnable[st.trace.decide(runnable.len())];
            st.threads[next].gate.clone().grant();
        }
    }

    /// Tear the execution down: wake every unfinished thread into the
    /// [`Cancelled`] unwind path.
    fn cancel_locked(&self, st: &mut ExecState) {
        self.cancelling.store(true, HostOrd::SeqCst);
        for t in st.threads.iter().filter(|t| t.status != Status::Finished) {
            t.gate.grant();
        }
    }

    fn signal_done(&self) {
        self.done.grant();
    }

    /// Record a violation found by the current thread and tear down.
    fn fail(&self, kind: ViolationKind) {
        let mut guard = self.lock();
        let st = &mut *guard;
        let v = Violation {
            kind,
            schedule: 0,
            trace: st.trace.prefix.clone(),
        };
        st.violation.get_or_insert(v);
        self.cancel_locked(st);
        self.signal_done();
    }

    /// Thread epilogue: mark finished, wake joiners, pass the token on.
    fn thread_finished(self: &Arc<Self>, tid: usize, clean: bool) {
        let mut guard = self.lock();
        let st = &mut *guard;
        st.threads[tid].status = Status::Finished;
        if clean {
            for t in st.threads.iter_mut() {
                if t.status == Status::BlockedJoin(tid) {
                    t.status = Status::Runnable;
                }
            }
            self.pass_token_locked(st);
        }
        // On the cancelled/panicking path the canceller has already
        // granted every gate and signalled completion.
    }
}

/// Body of every model OS thread: wait for the first grant, run the
/// closure under `catch_unwind`, convert panics into violations.
pub(crate) fn thread_main(shared: Arc<ExecShared>, tid: usize, f: impl FnOnce() + Send) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared: shared.clone(),
            tid,
        })
    });
    let my_gate = {
        let st = shared.lock();
        st.threads[tid].gate.clone()
    };
    my_gate.wait();
    if shared.cancelling.load(HostOrd::SeqCst) {
        shared.thread_finished(tid, false);
        return;
    }
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(()) => shared.thread_finished(tid, true),
        Err(p) if p.is::<Cancelled>() => shared.thread_finished(tid, false),
        Err(p) => {
            let msg = if let Some(s) = p.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            shared.fail(ViolationKind::Panic(msg));
            shared.thread_finished(tid, false);
        }
    }
}

/// Install a process-wide panic hook (once) that silences the default
/// "thread panicked" spew for model threads — their panics are expected
/// (they become [`ViolationKind::Panic`] or are [`Cancelled`] unwinds)
/// and a mutant hunt would otherwise print thousands of them.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let name = std::thread::current().name().map(str::to_string);
            if name.as_deref().is_some_and(|n| n.starts_with("model-")) {
                return;
            }
            prev(info);
        }));
    });
}

/// The bounded exhaustive explorer. Defaults explore every schedule (no
/// preemption cap) of small scenarios; see the field docs for bounds.
#[derive(Clone, Copy, Debug)]
pub struct Checker {
    /// Abort with [`ViolationKind::ScheduleBound`] beyond this many
    /// executions (default 1,000,000).
    pub max_schedules: usize,
    /// Abort an execution beyond this many schedule points (default
    /// 50,000) — catches livelocks.
    pub max_steps: usize,
    /// When `Some(n)`, only explore schedules with at most `n`
    /// preemptions (context switches away from a still-runnable thread).
    /// Forced switches (blocking) are always free. `None` explores all
    /// interleavings.
    pub max_preemptions: Option<usize>,
}

impl Default for Checker {
    fn default() -> Checker {
        Checker {
            max_schedules: 1_000_000,
            max_steps: 50_000,
            max_preemptions: None,
        }
    }
}

impl Checker {
    /// A checker with default bounds.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Cap the preemption count per schedule (CHESS-style bounding).
    pub fn preemption_bound(mut self, n: usize) -> Checker {
        self.max_preemptions = Some(n);
        self
    }

    /// Exhaustively explore `f`'s bounded interleavings. `f` is re-run
    /// once per schedule, each time on fresh model state; it builds its
    /// shared objects from [`crate::sync`] types, spawns model threads,
    /// and asserts its invariants inline.
    pub fn check<F>(&self, f: F) -> Result<Stats, Box<Violation>>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_quiet_hook();
        let f = Arc::new(f);
        let mut prefix: Vec<Decision> = Vec::new();
        let mut schedules = 0usize;
        let mut max_depth = 0usize;
        loop {
            schedules += 1;
            if schedules > self.max_schedules {
                return Err(Box::new(Violation {
                    kind: ViolationKind::ScheduleBound,
                    schedule: schedules,
                    trace: prefix,
                }));
            }
            let shared = Arc::new(ExecShared::new(
                self.max_steps,
                self.max_preemptions,
                std::mem::take(&mut prefix),
            ));
            let root = shared.register_thread(View::default());
            debug_assert_eq!(root, 0);
            {
                let sh = shared.clone();
                let fr = f.clone();
                let h = std::thread::Builder::new()
                    .name("model-0".to_string())
                    .spawn(move || thread_main(sh, 0, move || fr()))
                    .expect("spawn model root thread");
                shared
                    .handles
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(h);
            }
            {
                let st = shared.lock();
                st.threads[0].gate.clone().grant();
            }
            shared.done.wait();
            // Join every OS thread of this execution (cancelled ones are
            // already unwinding).
            loop {
                let h = shared
                    .handles
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop();
                match h {
                    Some(h) => {
                        let _ = h.join();
                    }
                    None => break,
                }
            }
            let mut st = shared.lock();
            if let Some(mut v) = st.violation.take() {
                v.schedule = schedules;
                return Err(Box::new(v));
            }
            let final_prefix = std::mem::take(&mut st.trace.prefix);
            drop(st);
            max_depth = max_depth.max(final_prefix.len());
            prefix = final_prefix;
            if !backtrack(&mut prefix) {
                return Ok(Stats {
                    schedules,
                    max_depth,
                });
            }
        }
    }
}

/// Convenience: [`Checker::check`] with default bounds.
pub fn check<F>(f: F) -> Result<Stats, Box<Violation>>
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::new().check(f)
}
