//! Bounded exhaustive checking of the `Mech` admission protocol, plus
//! litmus sanity tests of the visibility model itself.
//!
//! The headline test is `every_seeded_ordering_mutant_is_detected`: for
//! each `semlock::mech::ORDERING_AUDIT` entry that declares a weakened
//! mutant ordering, running the protocol scenarios with that single site
//! weakened must produce a counterexample (an assertion failure or a
//! lost-wakeup deadlock), while the unmutated profile passes the very
//! same scenarios. CI fails if any mutant survives.

use model::mech_model::{
    group_probe, DwcasMech, GraphMech, GroupRollback, OrderingProfile, PackedMech, WideMech,
};
use model::sync::{thread, AtomicU64, Ordering};
use model::{Checker, Stats, Violation, ViolationKind};
use semlock::mech::{dwcas_conflict_mask, field_of, packed_conflict_mask};
use std::sync::Arc;

/// Preemption bound for the 3-thread scenarios. The default of 1 keeps
/// the everyday `cargo test` run fast; the CI `model-check` job sets
/// `MODEL_THREE_THREAD_PREEMPTION_BOUND=2` for the deeper sweep.
fn three_thread_bound() -> usize {
    std::env::var("MODEL_THREE_THREAD_PREEMPTION_BOUND")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------
// Litmus tests: the memory model itself behaves like C++11 on the
// classic shapes.
// ---------------------------------------------------------------------

#[test]
fn litmus_message_passing_release_acquire_passes() {
    Checker::new()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(1, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(
                    data.load(Ordering::Relaxed),
                    1,
                    "MP: stale data after acquire"
                );
            }
            t.join();
        })
        .expect("release/acquire message passing must have no stale read");
}

#[test]
fn litmus_message_passing_relaxed_is_refuted() {
    let v = Checker::new()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(1, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 1, "MP: stale data");
            }
            t.join();
        })
        .expect_err("relaxed message passing must exhibit the stale read");
    assert!(
        matches!(v.kind, ViolationKind::Panic(_)),
        "expected an assertion counterexample, got {v}"
    );
}

#[test]
fn litmus_store_buffering_seqcst_forbids_both_zero() {
    Checker::new()
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x1, y1) = (x.clone(), y.clone());
            let (x2, y2) = (x.clone(), y.clone());
            let t1 = thread::spawn(move || {
                x1.store(1, Ordering::SeqCst);
                y1.load(Ordering::SeqCst)
            });
            let t2 = thread::spawn(move || {
                y2.store(1, Ordering::SeqCst);
                x2.load(Ordering::SeqCst)
            });
            let (r1, r2) = (t1.join(), t2.join());
            assert!(r1 == 1 || r2 == 1, "SB: both threads read 0 under SeqCst");
        })
        .expect("SeqCst store buffering must never read 0/0");
}

#[test]
fn litmus_store_buffering_relaxed_observes_both_zero() {
    let v = Checker::new()
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x1, y1) = (x.clone(), y.clone());
            let (x2, y2) = (x.clone(), y.clone());
            let t1 = thread::spawn(move || {
                x1.store(1, Ordering::Relaxed);
                y1.load(Ordering::Relaxed)
            });
            let t2 = thread::spawn(move || {
                y2.store(1, Ordering::Relaxed);
                x2.load(Ordering::Relaxed)
            });
            let (r1, r2) = (t1.join(), t2.join());
            assert!(r1 == 1 || r2 == 1, "SB: both threads read 0");
        })
        .expect_err("relaxed store buffering must exhibit 0/0");
    assert!(matches!(v.kind, ViolationKind::Panic(_)), "got {v}");
}

// ---------------------------------------------------------------------
// Protocol scenarios, parameterized by ordering profile so the same
// code proves the shipped protocol and refutes every mutant.
// ---------------------------------------------------------------------

/// Two threads take cross-conflicting packed modes and each increments a
/// plain (Relaxed) data cell inside the critical section. Checks
/// admission exclusivity (an in-CS counter), visibility (no lost
/// update), release refusal of double unlock, and count balance.
fn packed_exclusivity_scenario(profile: OrderingProfile) -> Result<Stats, Box<Violation>> {
    Checker::new().preemption_bound(3).check(move || {
        let mech = PackedMech::new(profile);
        let data = Arc::new(AtomicU64::new(0));
        let in_cs = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = [(0u32, 1u32), (1u32, 0u32)]
            .into_iter()
            .map(|(local, other)| {
                let mech = mech.clone();
                let data = data.clone();
                let in_cs = in_cs.clone();
                thread::spawn(move || {
                    let mask = packed_conflict_mask(&[other]);
                    mech.lock(local, mask);
                    assert_eq!(
                        in_cs.fetch_add(1, Ordering::Relaxed),
                        0,
                        "conflicting modes held concurrently"
                    );
                    let v = data.load(Ordering::Relaxed);
                    data.store(v + 1, Ordering::Relaxed);
                    in_cs.fetch_sub(1, Ordering::Relaxed);
                    assert!(mech.unlock(local), "balanced release refused");
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(
            data.load(Ordering::Relaxed),
            2,
            "lost update across releases"
        );
        assert_eq!(mech.word(), 0, "counts unbalanced after all releases");
        assert!(!mech.unlock(0), "double unlock must be refused");
    })
}

/// Main holds a packed mode, a spawned waiter wants a conflicting one;
/// main releases while the waiter may be parking. Any schedule in which
/// the waiter stays parked after the release is a lost wakeup, reported
/// as a model deadlock.
fn packed_lost_wakeup_scenario(profile: OrderingProfile) -> Result<Stats, Box<Violation>> {
    Checker::new().preemption_bound(3).check(move || {
        let mech = PackedMech::new(profile);
        mech.lock(0, packed_conflict_mask(&[1]));
        let m2 = mech.clone();
        let waiter = thread::spawn(move || {
            m2.lock(1, packed_conflict_mask(&[0]));
            assert!(m2.unlock(1));
        });
        assert!(mech.unlock(0));
        waiter.join();
        assert_eq!(mech.word(), 0);
    })
}

/// The same handoff shape on the wide (per-mode counter) mechanism,
/// whose release/park protocol is the store-buffering pair the SeqCst
/// sites exist for.
fn wide_lost_wakeup_scenario(profile: OrderingProfile) -> Result<Stats, Box<Violation>> {
    Checker::new().preemption_bound(3).check(move || {
        let mech = WideMech::new(2, profile);
        mech.lock(0, &[1]);
        let m2 = mech.clone();
        let waiter = thread::spawn(move || {
            m2.lock(1, &[0]);
            assert!(m2.unlock(1));
        });
        assert!(mech.unlock(0));
        waiter.join();
        assert_eq!(mech.count(0), 0);
        assert_eq!(mech.count(1), 0);
        assert!(!mech.unlock(1), "double unlock must be refused");
    })
}

/// The lost-wakeup handoff on the conflict-graph transcription: the
/// identical store-buffering pair as the wide mechanism, with the
/// conflict check walking the precomputed adjacency rows.
fn graph_lost_wakeup_scenario(profile: OrderingProfile) -> Result<Stats, Box<Violation>> {
    Checker::new().preemption_bound(3).check(move || {
        let mech = GraphMech::new(vec![vec![1], vec![0]], profile);
        mech.lock(0);
        let m2 = mech.clone();
        let waiter = thread::spawn(move || {
            m2.lock(1);
            assert!(m2.unlock(1));
        });
        assert!(mech.unlock(0));
        waiter.join();
        assert_eq!(mech.count(0), 0);
        assert_eq!(mech.count(1), 0);
        assert!(!mech.unlock(1), "double unlock must be refused");
    })
}

/// Exclusivity and visibility through the conflict-graph admission: two
/// threads on mutually conflicting modes increment a plain data cell in
/// their critical sections; no schedule may admit both at once or lose
/// an update across the releases.
fn graph_exclusivity_scenario(profile: OrderingProfile) -> Result<Stats, Box<Violation>> {
    Checker::new().preemption_bound(3).check(move || {
        let mech = GraphMech::new(vec![vec![1], vec![0]], profile);
        let data = Arc::new(AtomicU64::new(0));
        let in_cs = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = [0u32, 1u32]
            .into_iter()
            .map(|local| {
                let mech = mech.clone();
                let data = data.clone();
                let in_cs = in_cs.clone();
                thread::spawn(move || {
                    mech.lock(local);
                    assert_eq!(
                        in_cs.fetch_add(1, Ordering::Relaxed),
                        0,
                        "graph-conflicting modes held concurrently"
                    );
                    let v = data.load(Ordering::Relaxed);
                    data.store(v + 1, Ordering::Relaxed);
                    in_cs.fetch_sub(1, Ordering::Relaxed);
                    assert!(mech.unlock(local), "balanced release refused");
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(
            data.load(Ordering::Relaxed),
            2,
            "lost update across releases"
        );
        assert_eq!(mech.count(0), 0, "counts unbalanced after all releases");
        assert_eq!(mech.count(1), 0, "counts unbalanced after all releases");
        assert!(!mech.unlock(0), "double unlock must be refused");
    })
}

/// The packed exclusivity/visibility scenario transposed onto the Dwcas
/// word, with the two modes in *different 64-bit halves* (0 and 15) so a
/// torn or half-stale double-word update cannot hide.
fn dwcas_exclusivity_scenario(profile: OrderingProfile) -> Result<Stats, Box<Violation>> {
    Checker::new().preemption_bound(3).check(move || {
        let mech = DwcasMech::new(profile);
        let data = Arc::new(AtomicU64::new(0));
        let in_cs = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = [(0u32, 15u32), (15u32, 0u32)]
            .into_iter()
            .map(|(local, other)| {
                let mech = mech.clone();
                let data = data.clone();
                let in_cs = in_cs.clone();
                thread::spawn(move || {
                    let mask = dwcas_conflict_mask(&[other]);
                    mech.lock(local, mask);
                    assert_eq!(
                        in_cs.fetch_add(1, Ordering::Relaxed),
                        0,
                        "conflicting dwcas modes held concurrently"
                    );
                    let v = data.load(Ordering::Relaxed);
                    data.store(v + 1, Ordering::Relaxed);
                    in_cs.fetch_sub(1, Ordering::Relaxed);
                    assert!(mech.unlock(local), "balanced release refused");
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(
            data.load(Ordering::Relaxed),
            2,
            "lost update across releases"
        );
        assert_eq!(mech.word(), 0, "counts unbalanced after all releases");
        assert!(!mech.unlock(0), "double unlock must be refused");
    })
}

/// The lost-wakeup shape on the Dwcas word.
fn dwcas_lost_wakeup_scenario(profile: OrderingProfile) -> Result<Stats, Box<Violation>> {
    Checker::new().preemption_bound(3).check(move || {
        let mech = DwcasMech::new(profile);
        mech.lock(0, dwcas_conflict_mask(&[15]));
        let m2 = mech.clone();
        let waiter = thread::spawn(move || {
            m2.lock(15, dwcas_conflict_mask(&[0]));
            assert!(m2.unlock(15));
        });
        assert!(mech.unlock(0));
        waiter.join();
        assert_eq!(mech.word(), 0);
    })
}

/// Two waiters park behind one holder, so the claimed batch is a real
/// *chain*: main holds mode 0; both waiters want mode 1 (conflicting
/// with 0, commuting with itself). A weakened push or claim CAS lets the
/// claimer read a stale `next` pointer, cutting the chain — the deeper
/// waiter's node is removed from the stack but never notified, which no
/// later release can repair: a permanent deadlock the checker reports.
fn stack_two_waiter_scenario(profile: OrderingProfile) -> Result<Stats, Box<Violation>> {
    // The chain-cut counterexample needs two preemptions (one waiter
    // stopped between its push and its fetch_or, plus the handoff racing
    // it), so this scenario never runs below bound 2.
    Checker::new()
        .preemption_bound(three_thread_bound().max(2))
        .check(move || {
            let mech = PackedMech::new(profile);
            let released = Arc::new(AtomicU64::new(0));
            mech.lock(0, packed_conflict_mask(&[1]));
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let mech = mech.clone();
                    let released = released.clone();
                    thread::spawn(move || {
                        mech.lock(1, packed_conflict_mask(&[0]));
                        // Visibility: admission happens-after the release
                        // that freed mode 0, so the pre-release store is
                        // visible even through a Relaxed load.
                        assert_eq!(
                            released.load(Ordering::Relaxed),
                            1,
                            "admitted before the conflicting release was visible"
                        );
                        assert!(mech.unlock(1));
                    })
                })
                .collect();
            released.store(1, Ordering::Relaxed);
            assert!(mech.unlock(0));
            for w in waiters {
                w.join();
            }
            assert_eq!(mech.word(), 0, "counts unbalanced after all releases");
        })
}

/// The clear↔claim window: main holds modes 0 **and** 1 (commuting with
/// each other), two waiters want mode 2 (conflicting with both). A
/// waiter that pushes and sets the summary bit while `main.unlock(0)`'s
/// handoff is in flight must end up either in that handoff's claimed
/// batch or with the bit still set for `main.unlock(1)` to hand off —
/// clearing *before* claiming guarantees exactly this (the `fetch_or`
/// and the clear are totally ordered RMWs on one word), which is the
/// invariant this scenario pins. Its historical claim-then-clear
/// counterpart strands the window waiter: the checker found the
/// counterexample and forced the reorder.
fn stack_window_pusher_scenario(profile: OrderingProfile) -> Result<Stats, Box<Violation>> {
    // Like the two-waiter chain-cut, the interesting interleavings put a
    // pusher inside an in-flight handoff; keep at least bound 2.
    Checker::new()
        .preemption_bound(three_thread_bound().max(2))
        .check(move || {
            let mech = PackedMech::new(profile);
            mech.lock(0, packed_conflict_mask(&[2]));
            mech.lock(1, packed_conflict_mask(&[2]));
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let mech = mech.clone();
                    thread::spawn(move || {
                        mech.lock(2, packed_conflict_mask(&[0, 1]));
                        assert!(mech.unlock(2));
                    })
                })
                .collect();
            assert!(mech.unlock(0));
            assert!(mech.unlock(1));
            for w in waiters {
                w.join();
            }
            assert_eq!(mech.word(), 0, "counts unbalanced after all releases");
        })
}

/// Three threads on the packed word: two cross-conflicting modes plus a
/// second holder of mode 0 (self-commuting), under a preemption bound
/// (see [`three_thread_bound`]).
fn packed_three_thread_scenario(profile: OrderingProfile) -> Result<Stats, Box<Violation>> {
    Checker::new()
        .preemption_bound(three_thread_bound())
        .check(move || {
            let mech = PackedMech::new(profile);
            let in_cs = Arc::new(AtomicU64::new(0));
            let specs = [(0u32, 1u32), (0u32, 1u32), (1u32, 0u32)];
            let handles: Vec<_> = specs
                .into_iter()
                .map(|(local, other)| {
                    let mech = mech.clone();
                    let in_cs = in_cs.clone();
                    thread::spawn(move || {
                        mech.lock(local, packed_conflict_mask(&[other]));
                        // Mode 1 excludes both mode-0 holders; mode 0 only
                        // excludes mode 1, so encode holders as bit fields.
                        let token = 1u64 << (8 * local);
                        let seen = in_cs.fetch_add(token, Ordering::Relaxed);
                        if local == 1 {
                            assert_eq!(seen, 0, "mode 1 admitted alongside a holder");
                        } else {
                            assert_eq!(seen >> 8, 0, "mode 0 admitted alongside mode 1");
                        }
                        in_cs.fetch_sub(token, Ordering::Relaxed);
                        assert!(mech.unlock(local));
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(mech.word(), 0);
        })
}

/// One partition word, two threads: main holds mode 1 for the prober's
/// whole lifetime, so the combined group admission for modes {0, 2}
/// (0 conflicting with 1) must be refused — and a refused group must
/// leave the word exactly as it found it: no member's count may leak.
/// With the conflict released, the same group admits whole in one CAS.
fn packed_group_word_all_or_nothing_scenario(
    profile: OrderingProfile,
) -> Result<Stats, Box<Violation>> {
    Checker::new().preemption_bound(3).check(move || {
        let mech = PackedMech::new(profile);
        mech.lock(1, 0);
        let m2 = mech.clone();
        let prober = thread::spawn(move || {
            let members = [(0u32, packed_conflict_mask(&[1])), (2u32, 0u64)];
            assert!(
                !m2.try_admit_group(&members),
                "group admitted against a held conflict"
            );
            let w = m2.word();
            assert_eq!(field_of(w, 0), 0, "refused group leaked member 0");
            assert_eq!(field_of(w, 2), 0, "refused group leaked member 2");
        });
        prober.join();
        assert!(mech.unlock(1));
        let members = [(0u32, packed_conflict_mask(&[1])), (2u32, 0u64)];
        assert!(mech.try_admit_group(&members), "uncontended group refused");
        assert_eq!(field_of(mech.word(), 0), 1);
        assert_eq!(field_of(mech.word(), 2), 1);
        assert!(mech.unlock(2));
        assert!(mech.unlock(0));
        assert_eq!(mech.word(), 0);
    })
}

/// Two partition words, two threads, cross-conflicting groups: each
/// thread batch-probes (its mode on word A, its mode on word B) through
/// [`group_probe`] and, when admitted, runs a critical section spanning
/// both partitions. No schedule may admit both groups at once, and a
/// refused probe's rollback must leave both words balanced.
fn packed_group_exclusivity_scenario(
    profile: OrderingProfile,
) -> Result<Stats, Box<Violation>> {
    Checker::new().preemption_bound(3).check(move || {
        let a = PackedMech::new(profile);
        let b = PackedMech::new(profile);
        let in_cs = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = [(0u32, 1u32), (1u32, 0u32)]
            .into_iter()
            .map(|(local, other)| {
                let (a, b, in_cs) = (a.clone(), b.clone(), in_cs.clone());
                thread::spawn(move || {
                    let members = [
                        (a, local, packed_conflict_mask(&[other])),
                        (b, local, packed_conflict_mask(&[other])),
                    ];
                    if group_probe(&members, GroupRollback::Correct) {
                        assert_eq!(
                            in_cs.fetch_add(1, Ordering::Relaxed),
                            0,
                            "conflicting groups admitted concurrently"
                        );
                        in_cs.fetch_sub(1, Ordering::Relaxed);
                        for (m, l, _) in members.iter().rev() {
                            assert!(m.unlock(*l));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(a.word(), 0, "partition A unbalanced after group probes");
        assert_eq!(b.word(), 0, "partition B unbalanced after group probes");
    })
}

/// The rollback window of a refused batched probe, three threads: main
/// holds partition B's mode 1 for the prober's whole lifetime, so the
/// probe (A.0, then B.0 conflicting with B.1) always fast-passes A.0 and
/// is refused on B — forcing the rollback path. Meanwhile a victim
/// thread holds B.0 outright (declaring no conflicts of its own — the
/// mech layer takes caller-supplied masks, so the asymmetry is legal and
/// keeps the state space small) and blocks on A.1, which conflicts with
/// the probe's transient A.0 hold:
///
/// * [`GroupRollback::Correct`] releases A.0 through the full unlock, so
///   a victim parked behind it is handed the partition — every schedule
///   terminates with balanced words.
/// * [`GroupRollback::SkipHandoff`] leaves the victim parked forever on
///   schedules where it parked inside the probe's hold window: a lost
///   wakeup the checker reports as a deadlock.
/// * [`GroupRollback::IncludeFailed`] also decrements the refused member
///   B.0, stealing the victim's hold; the victim's own release then
///   underflows and its assertion fires.
fn packed_group_rollback_scenario(
    profile: OrderingProfile,
    rollback: GroupRollback,
) -> Result<Stats, Box<Violation>> {
    Checker::new()
        .preemption_bound(three_thread_bound())
        .check(move || {
            let a = PackedMech::new(profile);
            let b = PackedMech::new(profile);
            b.lock(1, 0);
            let (av, bv) = (a.clone(), b.clone());
            let victim = thread::spawn(move || {
                bv.lock(0, 0);
                av.lock(1, packed_conflict_mask(&[0]));
                assert!(av.unlock(1));
                assert!(
                    bv.unlock(0),
                    "rollback of a refused member stole the victim's hold"
                );
            });
            let (ap, bp) = (a.clone(), b.clone());
            let prober = thread::spawn(move || {
                let members = [
                    (ap, 0u32, packed_conflict_mask(&[1])),
                    (bp, 0u32, packed_conflict_mask(&[1])),
                ];
                assert!(
                    !group_probe(&members, rollback),
                    "group admitted against main's held conflict"
                );
            });
            prober.join();
            victim.join();
            assert!(b.unlock(1));
            assert_eq!(a.word(), 0, "partition A unbalanced after rollback");
            assert_eq!(b.word(), 0, "partition B unbalanced after rollback");
        })
}

#[test]
fn group_word_admission_is_all_or_nothing() {
    packed_group_word_all_or_nothing_scenario(OrderingProfile::default())
        .expect("a refused one-word group must leave the word untouched");
}

#[test]
fn group_probe_is_exclusive_and_balanced() {
    let stats = packed_group_exclusivity_scenario(OrderingProfile::default())
        .expect("shipped batched probe must pass group exclusivity");
    assert!(
        stats.schedules > 50,
        "exploration suspiciously small: {stats:?}"
    );
}

#[test]
fn group_rollback_hands_off_and_balances() {
    packed_group_rollback_scenario(OrderingProfile::default(), GroupRollback::Correct)
        .expect("shipped group rollback must hand off and balance every schedule");
}

#[test]
fn group_rollback_skip_handoff_is_refuted() {
    let v = packed_group_rollback_scenario(OrderingProfile::default(), GroupRollback::SkipHandoff)
        .expect_err("a rollback that skips the waiter handoff must lose a wakeup");
    assert!(
        is_counterexample(&v),
        "expected a deadlock or assertion counterexample, got {v:?}"
    );
}

#[test]
fn group_rollback_include_failed_is_refuted() {
    let v =
        packed_group_rollback_scenario(OrderingProfile::default(), GroupRollback::IncludeFailed)
            .expect_err("a rollback that touches the refused member must steal a hold");
    assert!(
        is_counterexample(&v),
        "expected a stolen-hold assertion counterexample, got {v:?}"
    );
}

#[test]
fn packed_admission_is_exclusive_and_visible() {
    let stats = packed_exclusivity_scenario(OrderingProfile::default())
        .expect("shipped packed protocol must pass exclusivity/visibility");
    assert!(
        stats.schedules > 100,
        "exploration suspiciously small: {stats:?}"
    );
}

#[test]
fn packed_release_never_loses_a_wakeup() {
    packed_lost_wakeup_scenario(OrderingProfile::default())
        .expect("shipped packed protocol must not lose wakeups");
}

#[test]
fn wide_release_never_loses_a_wakeup() {
    wide_lost_wakeup_scenario(OrderingProfile::default())
        .expect("shipped wide protocol must not lose wakeups");
}

#[test]
fn graph_release_never_loses_a_wakeup() {
    graph_lost_wakeup_scenario(OrderingProfile::default())
        .expect("shipped conflict-graph protocol must not lose wakeups");
}

#[test]
fn graph_admission_is_exclusive_and_visible() {
    let stats = graph_exclusivity_scenario(OrderingProfile::default())
        .expect("shipped conflict-graph protocol must pass exclusivity/visibility");
    assert!(
        stats.schedules > 100,
        "exploration suspiciously small: {stats:?}"
    );
}

#[test]
fn packed_three_thread_admission_is_exclusive() {
    packed_three_thread_scenario(OrderingProfile::default())
        .expect("shipped packed protocol must pass the 3-thread scenario");
}

#[test]
fn dwcas_admission_is_exclusive_and_visible() {
    let stats = dwcas_exclusivity_scenario(OrderingProfile::default())
        .expect("shipped dwcas protocol must pass exclusivity/visibility");
    assert!(
        stats.schedules > 100,
        "exploration suspiciously small: {stats:?}"
    );
}

#[test]
fn dwcas_release_never_loses_a_wakeup() {
    dwcas_lost_wakeup_scenario(OrderingProfile::default())
        .expect("shipped dwcas protocol must not lose wakeups");
}

#[test]
fn claim_stack_wakes_the_whole_chain() {
    stack_two_waiter_scenario(OrderingProfile::default())
        .expect("shipped claim-stack protocol must wake every chained waiter");
}

#[test]
fn claim_stack_never_strands_window_pushers() {
    stack_window_pusher_scenario(OrderingProfile::default())
        .expect("shipped claim-stack protocol must not strand a clear\u{2194}claim window pusher");
}

// ---------------------------------------------------------------------
// Mutant detection.
// ---------------------------------------------------------------------

fn is_counterexample(v: &Violation) -> bool {
    matches!(v.kind, ViolationKind::Panic(_) | ViolationKind::Deadlock(_))
}

/// Every seeded ordering mutant from `ORDERING_AUDIT` must be refuted by
/// at least one scenario. A surviving mutant means either the protocol
/// does not actually need the audited ordering or the model lost the
/// power to see the difference — both are build-stopping.
#[test]
fn every_seeded_ordering_mutant_is_detected() {
    let mutants = OrderingProfile::mutants();
    assert!(
        mutants.len() >= 11,
        "ORDERING_AUDIT must seed at least 11 mutants, found {}",
        mutants.len()
    );
    let mut survivors = Vec::new();
    for (site, profile) in &mutants {
        // Lazily try the scenarios exercising the mutated path first: a
        // caught mutant fails fast, while a scenario that *passes* under
        // a mutant costs a full exploration we can usually skip.
        type Scenario = fn(OrderingProfile) -> Result<Stats, Box<Violation>>;
        let mut scenarios: Vec<Scenario> = if site.starts_with("wide.") {
            // The conflict-graph backend transcribes the wide protocol
            // verbatim, so a weakened wide site must fall to the graph
            // scenarios too (see the dedicated test below).
            vec![wide_lost_wakeup_scenario, graph_lost_wakeup_scenario]
        } else if site.starts_with("dwcas.") {
            vec![dwcas_exclusivity_scenario, dwcas_lost_wakeup_scenario]
        } else if site.starts_with("stack.") {
            vec![
                stack_two_waiter_scenario,
                stack_window_pusher_scenario,
                packed_lost_wakeup_scenario,
            ]
        } else {
            vec![packed_exclusivity_scenario, packed_lost_wakeup_scenario]
        };
        // Fall back to the full battery so a misclassified mutant still
        // gets every chance to be refuted before counting as a survivor
        // (lazy `any` means the extras only run when the targeted
        // scenarios all passed).
        scenarios.extend([
            packed_exclusivity_scenario,
            packed_lost_wakeup_scenario,
            dwcas_exclusivity_scenario,
            dwcas_lost_wakeup_scenario,
            stack_two_waiter_scenario,
            stack_window_pusher_scenario,
            wide_lost_wakeup_scenario,
            graph_lost_wakeup_scenario,
            graph_exclusivity_scenario,
            packed_three_thread_scenario,
        ] as [Scenario; 10]);
        let caught = scenarios
            .into_iter()
            .filter_map(|s| s(*profile).err())
            .any(|v| is_counterexample(&v));
        if !caught {
            survivors.push(*site);
        }
    }
    assert!(
        survivors.is_empty(),
        "ordering mutants survived bounded model checking: {survivors:?}"
    );
}

/// The conflict-graph backend inherits the wide protocol's ordering
/// sites wholesale, so its transcription must be strong enough to
/// refute every `wide.*` mutant *on its own* — otherwise the backend is
/// riding on orderings the model cannot show it needs.
#[test]
fn wide_site_mutants_fall_to_the_graph_transcription() {
    let mut checked = 0;
    let mut survivors = Vec::new();
    for (site, profile) in OrderingProfile::mutants() {
        if !site.starts_with("wide.") {
            continue;
        }
        checked += 1;
        let caught = [graph_lost_wakeup_scenario, graph_exclusivity_scenario]
            .into_iter()
            .filter_map(|s| s(profile).err())
            .any(|v| is_counterexample(&v));
        if !caught {
            survivors.push(site);
        }
    }
    assert_eq!(checked, 4, "expected all four wide sites to seed mutants");
    assert!(
        survivors.is_empty(),
        "wide-site mutants survived the conflict-graph transcription: {survivors:?}"
    );
}
