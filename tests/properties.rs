//! Property-based tests (proptest) on the core invariants:
//!
//! * `F_c` is symmetric and sound (must-commute implies concrete
//!   commutativity for all covered operation pairs);
//! * mode selection covers exactly the operations of the instantiated
//!   symbolic set;
//! * φ is deterministic and total;
//! * randomly generated atomic sections synthesize into programs whose
//!   concurrent executions satisfy the OS2PL protocol and whose
//!   single-threaded executions agree across all strategies.

use proptest::prelude::*;
use semlock::mode::{ModeTable, ModeTableBuilder};
use semlock::phi::Phi;
use semlock::symbolic::{Operation, SymArg, SymOp, SymbolicSet};
use semlock::value::Value;
use std::sync::Arc;

fn map_table(
    symsets: Vec<SymbolicSet>,
    n: u16,
) -> (Arc<ModeTable>, Vec<semlock::mode::LockSiteId>) {
    let schema = adts::schema_of("Map");
    let spec = adts::spec_of("Map");
    let mut b: ModeTableBuilder = ModeTable::builder(schema, spec, Phi::modulo(n));
    let sites = symsets.into_iter().map(|s| b.add_site(s)).collect();
    (b.build(), sites)
}

/// Strategy: a random symbolic set over the Map schema, with 0–2 variable
/// slots.
fn arb_symset() -> impl Strategy<Value = SymbolicSet> {
    let schema = adts::schema_of("Map");
    let arb_arg = prop_oneof![
        Just(SymArg::Star),
        (0u64..8).prop_map(|v| SymArg::Const(Value(v))),
        (0usize..2).prop_map(SymArg::Var),
    ];
    let method_count = schema.method_count();
    let arb_op = (0..method_count, proptest::collection::vec(arb_arg, 0..3)).prop_map(
        move |(m, mut args)| {
            let schema = adts::schema_of("Map");
            let arity = schema.sig(m).arity;
            args.resize(arity, SymArg::Star);
            args.truncate(arity);
            SymOp::new(m, args)
        },
    );
    proptest::collection::vec(arb_op, 1..4).prop_map(SymbolicSet::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fc_is_symmetric(symsets in proptest::collection::vec(arb_symset(), 1..3), n in 1u16..6) {
        let (t, _) = map_table(symsets, n);
        for a in 0..t.mode_count() as u32 {
            for b in 0..t.mode_count() as u32 {
                let (ma, mb) = (semlock::mode::ModeId(a), semlock::mode::ModeId(b));
                prop_assert_eq!(t.fc(ma, mb), t.fc(mb, ma));
            }
        }
    }

    #[test]
    fn selected_mode_covers_instantiation(
        symset in arb_symset(),
        keys in proptest::collection::vec(0u64..32, 2),
        probe in proptest::collection::vec(0u64..32, 2),
    ) {
        // Every concrete operation in [SY](σ) must be covered by the mode
        // selected under σ.
        let (t, sites) = map_table(vec![symset.clone()], 4);
        let keyvals: Vec<Value> = keys.iter().map(|&k| Value(k)).collect();
        let mode = t.select(sites[0], &keyvals);
        let schema = adts::schema_of("Map");
        for m in 0..schema.method_count() {
            let arity = schema.sig(m).arity;
            let args: Vec<Value> = probe.iter().take(arity).map(|&v| Value(v)).collect();
            if args.len() < arity {
                continue;
            }
            let op = Operation::new(m, args);
            if symset.instantiate_covers(&op, &keyvals) {
                prop_assert!(
                    t.mode_covers(mode, &op),
                    "mode must cover {:?} (symset {:?}, keys {:?})",
                    op, symset, keyvals
                );
            }
        }
    }

    #[test]
    fn must_commute_is_sound(
        sy1 in arb_symset(),
        sy2 in arb_symset(),
        k1 in proptest::collection::vec(0u64..16, 2),
        k2 in proptest::collection::vec(0u64..16, 2),
        probe in proptest::collection::vec(0u64..16, 4),
    ) {
        // If F_c says two modes commute, then every pair of concrete
        // operations covered by them must commute per the specification.
        let (t, sites) = map_table(vec![sy1, sy2], 4);
        let kv1: Vec<Value> = k1.iter().map(|&k| Value(k)).collect();
        let kv2: Vec<Value> = k2.iter().map(|&k| Value(k)).collect();
        let m1 = t.select(sites[0], &kv1);
        let m2 = t.select(sites[1], &kv2);
        if !t.fc(m1, m2) {
            return Ok(());
        }
        let schema = adts::schema_of("Map");
        let spec = adts::spec_of("Map");
        for a in 0..schema.method_count() {
            for b in 0..schema.method_count() {
                let (ar_a, ar_b) = (schema.sig(a).arity, schema.sig(b).arity);
                let op_a = Operation::new(a, probe.iter().take(ar_a).map(|&v| Value(v)).collect());
                let op_b = Operation::new(b, probe.iter().rev().take(ar_b).map(|&v| Value(v)).collect());
                if t.mode_covers(m1, &op_a) && t.mode_covers(m2, &op_b) {
                    prop_assert!(
                        spec.commutes(&op_a, &op_b),
                        "F_c=true but {} and {} do not commute",
                        op_a.display(&schema), op_b.display(&schema)
                    );
                }
            }
        }
    }

    #[test]
    fn phi_total_and_deterministic(v in any::<u64>(), n in 1u16..512) {
        let phi = Phi::fib(n);
        let a = phi.apply(Value(v));
        prop_assert!(a.0 < n);
        prop_assert_eq!(a, phi.apply(Value(v)));
        let pm = Phi::modulo(n);
        prop_assert_eq!(pm.apply(Value(v)).0 as u64, v % n as u64);
    }

    #[test]
    fn adts_specs_concretely_symmetric(
        class_idx in 0usize..5,
        m1 in 0usize..6,
        m2 in 0usize..6,
        args in proptest::collection::vec(0u64..6, 4),
    ) {
        let class = ["Map", "Set", "Queue", "Multimap", "WeakMap"][class_idx];
        let schema = adts::schema_of(class);
        let spec = adts::spec_of(class);
        let (m1, m2) = (m1 % schema.method_count(), m2 % schema.method_count());
        let a = Operation::new(m1, args.iter().take(schema.sig(m1).arity).map(|&v| Value(v)).collect());
        let b = Operation::new(m2, args.iter().rev().take(schema.sig(m2).arity).map(|&v| Value(v)).collect());
        prop_assert_eq!(spec.commutes(&a, &b), spec.commutes(&b, &a));
    }
}

// ---------------------------------------------------------------------
// Random-program synthesis properties
// ---------------------------------------------------------------------

mod random_programs {
    use super::*;
    use interp::{Env, Interp, Strategy as ExecStrategy};

    use semlock::protocol::ProtocolChecker;
    use synth::ir::{AtomicSection, Body, Expr, VarType};
    use synth::{ClassRegistry, Synthesizer};

    /// A tiny random-program generator: straight-line and branched calls
    /// over two Maps and a Set (all parameters, hence non-null), with
    /// scalar keys `k0..k2`.
    #[derive(Debug, Clone)]
    enum GenStmt {
        Call {
            recv: u8,
            method: u8,
            key: u8,
            ret: bool,
        },
        If {
            key: u8,
            then_branch: Vec<GenStmt>,
            else_branch: Vec<GenStmt>,
        },
    }

    fn arb_stmt(depth: u32) -> BoxedStrategy<GenStmt> {
        let call = (0u8..3, 0u8..4, 0u8..3, any::<bool>()).prop_map(|(recv, method, key, ret)| {
            GenStmt::Call {
                recv,
                method,
                key,
                ret,
            }
        });
        if depth == 0 {
            call.boxed()
        } else {
            prop_oneof![
                3 => call,
                1 => (
                    0u8..3,
                    proptest::collection::vec(arb_stmt(depth - 1), 1..3),
                    proptest::collection::vec(arb_stmt(depth - 1), 0..2),
                )
                    .prop_map(|(key, then_branch, else_branch)| GenStmt::If {
                        key,
                        then_branch,
                        else_branch
                    }),
            ]
            .boxed()
        }
    }

    fn lower(stmts: &[GenStmt], body: Body, tmp: &mut usize) -> Body {
        let mut body = body;
        for s in stmts {
            body = match s {
                GenStmt::Call {
                    recv,
                    method,
                    key,
                    ret,
                } => {
                    let key_var = format!("k{key}");
                    let (recv_name, method_name, args): (&str, &str, Vec<Expr>) = match recv % 3 {
                        0 | 1 => {
                            let r = if recv % 3 == 0 { "m1" } else { "m2" };
                            match method % 4 {
                                0 => (r, "get", vec![Expr::Var(key_var)]),
                                1 => (r, "put", vec![Expr::Var(key_var), Expr::Const(Value(1))]),
                                2 => (r, "remove", vec![Expr::Var(key_var)]),
                                _ => (r, "containsKey", vec![Expr::Var(key_var)]),
                            }
                        }
                        _ => match method % 3 {
                            0 => ("s", "add", vec![Expr::Var(key_var)]),
                            1 => ("s", "remove", vec![Expr::Var(key_var)]),
                            _ => ("s", "contains", vec![Expr::Var(key_var)]),
                        },
                    };
                    if *ret {
                        *tmp += 1;
                        let t = format!("t{tmp}");
                        body.call_into(&t, recv_name, method_name, args)
                    } else {
                        body.call(recv_name, method_name, args)
                    }
                }
                GenStmt::If {
                    key,
                    then_branch,
                    else_branch,
                } => {
                    let cond = Expr::Var(format!("k{key}"));
                    let tb = lower(then_branch, Body::new(), tmp);
                    let eb = lower(else_branch, Body::new(), tmp);
                    body.if_else(cond, tb, eb)
                }
            };
        }
        body
    }

    fn build_section(stmts: &[GenStmt]) -> AtomicSection {
        let mut tmp = 0usize;
        let body = lower(stmts, Body::new(), &mut tmp);
        let mut decls: Vec<(String, VarType)> = vec![
            ("m1".into(), VarType::Ptr("Map".into())),
            ("m2".into(), VarType::Ptr("Map".into())),
            ("s".into(), VarType::Ptr("Set".into())),
        ];
        for k in 0..3 {
            decls.push((format!("k{k}"), VarType::Scalar));
        }
        for t in 1..=tmp {
            decls.push((format!("t{t}"), VarType::Scalar));
        }
        AtomicSection::new("random", decls, body.build())
    }

    fn registry() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        r.register("Map", adts::schema_of("Map"), adts::spec_of("Map"));
        r.register("Set", adts::schema_of("Set"), adts::spec_of("Set"));
        r
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any generated section synthesizes, and its concurrent
        /// executions follow OS2PL (no op without a covering lock, two-
        /// phase, single lock per instance, acyclic lock order) and never
        /// deadlock.
        #[test]
        fn random_sections_synthesize_and_follow_protocol(
            stmts in proptest::collection::vec(arb_stmt(2), 1..6),
            keys in proptest::collection::vec(0u64..6, 16),
        ) {
            let section = build_section(&stmts);
            let program = Arc::new(
                Synthesizer::new(registry())
                    .phi(Phi::modulo(4))
                    .synthesize(&[section]),
            );
            let env = Arc::new(Env::new(program));
            let m1 = env.new_instance("Map");
            let m2 = env.new_instance("Map");
            let s = env.new_instance("Set");
            let checker = Arc::new(ProtocolChecker::new());
            let interp = Arc::new(
                Interp::new(env.clone(), ExecStrategy::Semantic).with_checker(checker.clone()),
            );
            std::thread::scope(|scope| {
                for t in 0..3usize {
                    let interp = interp.clone();
                    let keys = keys.clone();
                    scope.spawn(move || {
                        for (i, &k) in keys.iter().enumerate() {
                            let k2 = keys[(i + t) % keys.len()];
                            interp.run(
                                "random",
                                &[
                                    ("m1", m1),
                                    ("m2", m2),
                                    ("s", s),
                                    ("k0", Value(k)),
                                    ("k1", Value(k2)),
                                    ("k2", Value(k ^ k2)),
                                ],
                            );
                        }
                    });
                }
            });
            let violations = checker.check();
            prop_assert!(violations.is_empty(), "protocol violations: {violations:?}");
        }

        /// Single-threaded deterministic runs agree across strategies
        /// (semantic locking must not change sequential semantics).
        #[test]
        fn random_sections_strategy_agreement(
            stmts in proptest::collection::vec(arb_stmt(2), 1..6),
            keys in proptest::collection::vec(0u64..6, 8),
        ) {
            let section = build_section(&stmts);
            let mut snapshots = Vec::new();
            for strategy in [ExecStrategy::Semantic, ExecStrategy::Global, ExecStrategy::TwoPhase] {
                let program = Arc::new(
                    Synthesizer::new(registry())
                        .phi(Phi::modulo(4))
                        .synthesize(std::slice::from_ref(&section)),
                );
                let env = Arc::new(Env::new(program));
                let m1 = env.new_instance("Map");
                let m2 = env.new_instance("Map");
                let s = env.new_instance("Set");
                let interp = Interp::new(env.clone(), strategy);
                for (i, &k) in keys.iter().enumerate() {
                    interp.run(
                        "random",
                        &[
                            ("m1", m1),
                            ("m2", m2),
                            ("s", s),
                            ("k0", Value(k)),
                            ("k1", Value(keys[(i + 1) % keys.len()])),
                            ("k2", Value(k + 1)),
                        ],
                    );
                }
                // Snapshot observable state.
                let m1_adt = env.resolve(m1);
                let m2_adt = env.resolve(m2);
                let s_adt = env.resolve(s);
                let get = m1_adt.obj.schema().method("get");
                let contains = s_adt.obj.schema().method("contains");
                let mut snap = Vec::new();
                for k in 0..8u64 {
                    snap.push(m1_adt.obj.invoke(get, &[Value(k)]));
                    snap.push(m2_adt.obj.invoke(get, &[Value(k)]));
                    snap.push(s_adt.obj.invoke(contains, &[Value(k)]));
                }
                snapshots.push(snap);
            }
            prop_assert_eq!(&snapshots[0], &snapshots[1]);
            prop_assert_eq!(&snapshots[1], &snapshots[2]);
        }
    }
}
