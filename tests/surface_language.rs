//! The surface language end to end: parse the sample `.sl` programs,
//! synthesize them, and execute the result on the interpreter.

use interp::{Env, Interp, Strategy};
use semlock::value::Value;
use std::sync::Arc;
use synth::{ClassRegistry, Synthesizer};

fn registry() -> ClassRegistry {
    let mut r = ClassRegistry::new();
    for class in ["Map", "Set", "Queue", "Multimap", "WeakMap"] {
        r.register(class, adts::schema_of(class), adts::spec_of(class));
    }
    r
}

fn sample(name: &str) -> String {
    let path = format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("sample program exists")
}

#[test]
fn fig1_sl_parses_synthesizes_and_runs() {
    let sections = synth::parse::parse_program(&sample("fig1.sl")).unwrap();
    let program = Arc::new(Synthesizer::new(registry()).synthesize(&sections));
    let env = Arc::new(Env::new(program));
    let map = env.new_instance("Map");
    let queue = env.new_instance("Queue");
    let checker = Arc::new(semlock::protocol::ProtocolChecker::new());
    let interp =
        Arc::new(Interp::new(env.clone(), Strategy::Semantic).with_checker(checker.clone()));
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let interp = interp.clone();
            s.spawn(move || {
                for i in 0..100u64 {
                    interp.run(
                        "fig1",
                        &[
                            ("map", map),
                            ("queue", queue),
                            ("id", Value((t + i) % 4)),
                            ("x", Value(i)),
                            ("y", Value(i + 1)),
                            ("flag", Value(i % 2)),
                        ],
                    );
                }
            });
        }
    });
    checker.ensure_ok().unwrap();
}

#[test]
fn fig9_sl_uses_wrapper_and_computes_sum() {
    let sections = synth::parse::parse_program(&sample("fig9.sl")).unwrap();
    let program = Arc::new(Synthesizer::new(registry()).synthesize(&sections));
    assert_eq!(program.wrappers.len(), 1, "cyclic Set class wrapped");
    let env = Arc::new(Env::new(program));
    let map = env.new_instance("Map");
    let m_adt = env.resolve(map);
    let put = m_adt.obj.schema().method("put");
    for k in 0..4u64 {
        let s = env.new_instance("Set");
        let s_adt = env.resolve(s);
        let add = s_adt.obj.schema().method("add");
        for v in 0..=k {
            s_adt.obj.invoke(add, &[Value(v)]);
        }
        m_adt.obj.invoke(put, &[Value(k), s]);
    }
    let interp = Interp::new(env, Strategy::Semantic);
    let frame = interp.run("fig9", &[("map", map), ("n", Value(4))]);
    assert_eq!(frame["sum"], Value(1 + 2 + 3 + 4));
}

#[test]
fn parse_errors_are_reported_with_lines() {
    let err = synth::parse::parse_program("atomic broken(m: Map) {\n  m.put(1\n}").unwrap_err();
    assert!(err.line >= 2, "{err}");
}

#[test]
fn emitted_output_reparses() {
    // The compiler's *input* stage round-trips: parse → emit → parse.
    let sections = synth::parse::parse_program(&sample("fig1.sl")).unwrap();
    let emitted = sections[0].to_string();
    // Rebuild a parsable wrapper around the emitted body.
    let body: Vec<&str> = emitted.lines().skip(1).take_while(|l| *l != "}").collect();
    let src = format!(
        "atomic fig1(map: Map, queue: Queue, id, x, y, flag) {{\nset: Set;\n{}\n}}",
        body.join("\n")
    );
    let reparsed = synth::parse::parse_program(&src).unwrap();
    assert_eq!(reparsed[0].body, sections[0].body);
}

#[test]
fn transfer_sl_program_compiles_and_preserves_invariant() {
    let sections = synth::parse::parse_program(&sample("transfer.sl")).unwrap();
    assert_eq!(sections.len(), 2);
    let program = Arc::new(Synthesizer::new(registry()).synthesize(&sections));
    let env = Arc::new(Env::new(program));
    let a = env.new_instance("Set");
    let b = env.new_instance("Set");
    let a_adt = env.resolve(a);
    let add = a_adt.obj.schema().method("add");
    for v in 0..20u64 {
        a_adt.obj.invoke(add, &[Value(v)]);
    }
    let interp = Arc::new(Interp::new(env.clone(), Strategy::Semantic));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let interp = interp.clone();
            s.spawn(move || {
                for i in 0..200u64 {
                    let v = Value((t * 7 + i) % 20);
                    let (src, dst) = if i % 2 == 0 { (a, b) } else { (b, a) };
                    if i % 3 == 0 {
                        interp.run("audit", &[("src", src), ("dst", dst), ("v", v)]);
                    } else {
                        interp.run("transfer", &[("src", src), ("dst", dst), ("v", v)]);
                    }
                }
            });
        }
    });
    // Exactly-one invariant.
    let b_adt = env.resolve(b);
    let contains = a_adt.obj.schema().method("contains");
    for v in 0..20u64 {
        let in_a = a_adt.obj.invoke(contains, &[Value(v)]).as_bool();
        let in_b = b_adt.obj.invoke(contains, &[Value(v)]).as_bool();
        assert!(in_a ^ in_b, "value {v}: atomicity violated");
    }
}
