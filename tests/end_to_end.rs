//! End-to-end integration tests: paper examples compiled by the full
//! pipeline and executed on the multi-threaded interpreter, with the
//! OS2PL protocol checker recording every semantic-locking event.

use interp::{Env, Interp, Strategy};
use semlock::phi::Phi;
use semlock::protocol::ProtocolChecker;
use semlock::value::Value;
use std::sync::Arc;
use synth::ir::{e::*, fig1_section, fig7_section, fig9_section, ptr, scalar, AtomicSection, Body};
use synth::{ClassRegistry, Synthesizer};

fn registry() -> ClassRegistry {
    let mut r = ClassRegistry::new();
    for class in ["Map", "Set", "Queue", "Multimap", "WeakMap"] {
        r.register(class, adts::schema_of(class), adts::spec_of(class));
    }
    r
}

fn compile(sections: Vec<AtomicSection>) -> Arc<synth::SynthOutput> {
    Arc::new(
        Synthesizer::new(registry())
            .phi(Phi::fib(16))
            .synthesize(&sections),
    )
}

/// A bank-transfer-style section: move `v` from set `a` to set `b` if
/// present. The invariant "every value is in exactly one of the two sets"
/// breaks under non-atomic execution.
fn transfer_section() -> AtomicSection {
    AtomicSection::new(
        "transfer",
        [ptr("a", "Set"), ptr("b", "Set"), scalar("v"), scalar("c")],
        Body::new()
            .call_into("c", "a", "contains", vec![var("v")])
            .if_then(
                var("c"),
                Body::new()
                    .call("a", "remove", vec![var("v")])
                    .call("b", "add", vec![var("v")]),
            )
            .build(),
    )
}

#[test]
fn transfer_preserves_exactly_one_invariant() {
    let program = compile(vec![transfer_section()]);
    let env = Arc::new(Env::new(program));
    let a = env.new_instance("Set");
    let b = env.new_instance("Set");
    // Seed: values 0..50 in set a.
    let a_adt = env.resolve(a);
    let add = a_adt.obj.schema().method("add");
    for v in 0..50u64 {
        a_adt.obj.invoke(add, &[Value(v)]);
    }
    let checker = Arc::new(ProtocolChecker::new());
    let interp =
        Arc::new(Interp::new(env.clone(), Strategy::Semantic).with_checker(checker.clone()));

    // Threads bounce values back and forth between a and b.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let interp = interp.clone();
            s.spawn(move || {
                for i in 0..300u64 {
                    let v = (t * 13 + i) % 50;
                    let (src, dst) = if i % 2 == 0 { (a, b) } else { (b, a) };
                    interp.run("transfer", &[("a", src), ("b", dst), ("v", Value(v))]);
                }
            });
        }
    });

    // Invariant: each value in exactly one set.
    let b_adt = env.resolve(b);
    let contains = a_adt.obj.schema().method("contains");
    for v in 0..50u64 {
        let in_a = a_adt.obj.invoke(contains, &[Value(v)]).as_bool();
        let in_b = b_adt.obj.invoke(contains, &[Value(v)]).as_bool();
        assert!(
            in_a ^ in_b,
            "value {v} in_a={in_a} in_b={in_b}: atomicity violated"
        );
    }
    checker.ensure_ok().unwrap();
}

#[test]
fn all_strategies_agree_on_deterministic_runs() {
    // Single-threaded deterministic execution must produce identical final
    // state under every strategy.
    let finals: Vec<Vec<Value>> = [Strategy::Semantic, Strategy::Global, Strategy::TwoPhase]
        .into_iter()
        .map(|strategy| {
            let program = compile(vec![fig1_section()]);
            let env = Arc::new(Env::new(program));
            let map = env.new_instance("Map");
            let queue = env.new_instance("Queue");
            let interp = Interp::new(env.clone(), strategy);
            for i in 0..20u64 {
                interp.run(
                    "fig1",
                    &[
                        ("map", map),
                        ("queue", queue),
                        ("id", Value(i % 4)),
                        ("x", Value(i)),
                        ("y", Value(i + 100)),
                        ("flag", Value::from_bool(i % 3 == 0)),
                    ],
                );
            }
            let map_adt = env.resolve(map);
            let get = map_adt.obj.schema().method("get");
            let q_adt = env.resolve(queue);
            let size = q_adt.obj.schema().method("size");
            let mut snapshot: Vec<Value> = (0..4u64)
                .map(|k| {
                    let v = map_adt.obj.invoke(get, &[Value(k)]);
                    // Handles differ between runs; normalize to presence.
                    Value::from_bool(!v.is_null())
                })
                .collect();
            snapshot.push(q_adt.obj.invoke(size, &[]));
            snapshot
        })
        .collect();
    assert_eq!(finals[0], finals[1]);
    assert_eq!(finals[1], finals[2]);
}

#[test]
fn fig7_compiled_and_executed_concurrently() {
    let program = compile(vec![fig7_section()]);
    let env = Arc::new(Env::new(program));
    let m = env.new_instance("Map");
    let q = env.new_instance("Queue");
    // Seed the map with sets under keys 0..8.
    let m_adt = env.resolve(m);
    let put = m_adt.obj.schema().method("put");
    for k in 0..8u64 {
        let s = env.new_instance("Set");
        m_adt.obj.invoke(put, &[Value(k), s]);
    }
    let checker = Arc::new(ProtocolChecker::new());
    let interp =
        Arc::new(Interp::new(env.clone(), Strategy::Semantic).with_checker(checker.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let interp = interp.clone();
            s.spawn(move || {
                for i in 0..150u64 {
                    interp.run(
                        "fig7",
                        &[
                            ("m", m),
                            ("q", q),
                            ("key1", Value((t + i) % 8)),
                            ("key2", Value((t + i + 1) % 8)),
                        ],
                    );
                }
            });
        }
    });
    checker.ensure_ok().unwrap();
    // Every enqueued handle refers to a live set.
    let q_adt = env.resolve(q);
    let size = q_adt.obj.schema().method("size");
    assert_eq!(q_adt.obj.invoke(size, &[]), Value(600));
}

#[test]
fn fig9_cyclic_program_runs_concurrently_via_wrapper() {
    let program = compile(vec![fig9_section()]);
    assert_eq!(program.wrappers.len(), 1);
    let env = Arc::new(Env::new(program));
    let map = env.new_instance("Map");
    let m_adt = env.resolve(map);
    let put = m_adt.obj.schema().method("put");
    for k in 0..6u64 {
        let s = env.new_instance("Set");
        let s_adt = env.resolve(s);
        let add = s_adt.obj.schema().method("add");
        for v in 0..=k {
            s_adt.obj.invoke(add, &[Value(v)]);
        }
        m_adt.obj.invoke(put, &[Value(k), s]);
    }
    let interp = Arc::new(Interp::new(env.clone(), Strategy::Semantic));
    let expect = (1..=6).sum::<u64>();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let interp = interp.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    let frame = interp.run("fig9", &[("map", map), ("n", Value(6))]);
                    assert_eq!(frame["sum"], Value(expect));
                }
            });
        }
    });
}

#[test]
fn multi_section_program_cross_section_atomicity() {
    // Two different sections over the same shared map: an incrementer and
    // a mover. Their combined invariant: total count is preserved by
    // moves and incremented exactly once per increment.
    let inc = AtomicSection::new(
        "inc",
        [ptr("m", "Map"), scalar("k"), scalar("v")],
        Body::new()
            .call_into("v", "m", "get", vec![var("k")])
            .if_else(
                is_null(var("v")),
                Body::new().call("m", "put", vec![var("k"), konst(1)]),
                Body::new().call("m", "put", vec![var("k"), add(var("v"), konst(1))]),
            )
            .build(),
    );
    let mv = AtomicSection::new(
        "mv",
        [
            ptr("m", "Map"),
            scalar("from"),
            scalar("to"),
            scalar("v"),
            scalar("w"),
        ],
        Body::new()
            .call_into("v", "m", "get", vec![var("from")])
            .if_then(
                not(is_null(var("v"))),
                Body::new()
                    .call("m", "remove", vec![var("from")])
                    .call_into("w", "m", "get", vec![var("to")])
                    .if_else(
                        is_null(var("w")),
                        Body::new().call("m", "put", vec![var("to"), var("v")]),
                        Body::new().call("m", "put", vec![var("to"), add(var("v"), var("w"))]),
                    ),
            )
            .build(),
    );
    let program = compile(vec![inc, mv]);
    let env = Arc::new(Env::new(program));
    let m = env.new_instance("Map");
    let checker = Arc::new(ProtocolChecker::new());
    let interp =
        Arc::new(Interp::new(env.clone(), Strategy::Semantic).with_checker(checker.clone()));
    let incs_per_thread = 200u64;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let interp = interp.clone();
            s.spawn(move || {
                for i in 0..incs_per_thread {
                    let k = (t * 7 + i) % 10;
                    interp.run("inc", &[("m", m), ("k", Value(k))]);
                    if i % 5 == 0 {
                        interp.run(
                            "mv",
                            &[("m", m), ("from", Value(k)), ("to", Value((k + 1) % 10))],
                        );
                    }
                }
            });
        }
    });
    let m_adt = env.resolve(m);
    let get = m_adt.obj.schema().method("get");
    let total: u64 = (0..10u64)
        .map(|k| {
            let v = m_adt.obj.invoke(get, &[Value(k)]);
            if v.is_null() {
                0
            } else {
                v.0
            }
        })
        .sum();
    assert_eq!(total, 4 * incs_per_thread, "moves must preserve the total");
    checker.ensure_ok().unwrap();
}

#[test]
fn deadlock_freedom_under_adversarial_section_pair() {
    // Sections touching (map, queue) in opposite source orders; the
    // synthesized lock order must prevent deadlock across strategies.
    let ab = AtomicSection::new(
        "ab",
        [ptr("m", "Map"), ptr("q", "Queue"), scalar("k")],
        Body::new()
            .call("m", "put", vec![var("k"), konst(1)])
            .call("q", "enqueue", vec![var("k")])
            .build(),
    );
    let ba = AtomicSection::new(
        "ba",
        [ptr("m", "Map"), ptr("q", "Queue"), scalar("k")],
        Body::new()
            .call("q", "enqueue", vec![var("k")])
            .call("m", "put", vec![var("k"), konst(2)])
            .build(),
    );
    let program = compile(vec![ab, ba]);
    for strategy in [Strategy::Semantic, Strategy::TwoPhase] {
        let env = Arc::new(Env::new(program.clone()));
        let m = env.new_instance("Map");
        let q = env.new_instance("Queue");
        let interp = Arc::new(Interp::new(env, strategy));
        let done = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let interp = interp.clone();
                    s.spawn(move || {
                        let name = if t % 2 == 0 { "ab" } else { "ba" };
                        for i in 0..300u64 {
                            interp.run(name, &[("m", m), ("q", q), ("k", Value(i % 8))]);
                        }
                        true
                    })
                })
                .collect();
            handles.into_iter().all(|h| h.join().unwrap())
        });
        assert!(done);
    }
}
