//! Integration tests of the contention-telemetry layer (PR 3):
//!
//! * event streams from fault-injected chaos runs and interpreted
//!   workloads are *balanced* — every `AcquireStart` resolves to exactly
//!   one `Admit`+`Release`, `Timeout`, `PoisonRejected`, or
//!   `CycleAborted` per (txn, instance, mode, site);
//! * a watchdog-broken waits-for cycle produces a `CycleAborted` record
//!   whose member list matches the [`LockError::WouldDeadlock`] payload;
//! * recompiling the paper's Fig. 1 / Fig. 7 examples yields identical
//!   stable site ids across runs;
//! * a double release is refused in every build: `unlock_checked`
//!   returns [`LockError::UnlockUnderflow`], poisons the instance, and
//!   (with telemetry on) emits an `UnlockUnderflow` event.
//!
//! The telemetry gate and rings are process-global, so every test that
//! toggles the flag serializes on [`guard`] and resets at quiescence.

use proptest::prelude::*;
use semlock::error::LockError;
use semlock::manager::SemLock;
use semlock::mode::ModeTable;
use semlock::phi::Phi;
use semlock::symbolic::{SymArg, SymOp, SymbolicSet};
use semlock::telemetry::{self, EventKind};
use semlock::txn::Txn;
use semlock::value::Value;
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Duration;
use workloads::chaos::{run_chaos, ChaosConfig};

/// Serializes the telemetry-toggling tests (the enabled flag and the
/// event rings are process-global).
fn guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// The ComputeIfAbsent mode table: same-key transactions conflict
/// (containsKey vs put), distinct key classes commute.
fn cia_table(n: u16) -> (Arc<ModeTable>, semlock::mode::LockSiteId) {
    let schema = adts::schema_of("Map");
    let spec = adts::spec_of("Map");
    let mut b = ModeTable::builder(schema.clone(), spec, Phi::fib(n));
    let site = b.add_site(SymbolicSet::new(vec![
        SymOp::new(schema.method("containsKey"), vec![SymArg::Var(0)]),
        SymOp::new(schema.method("put"), vec![SymArg::Var(0), SymArg::Star]),
    ]));
    (b.build(), site)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite 1a: chaos soaks — bounded acquisitions, injected
    /// timeouts and panics, watchdog aborts, poisoning — always leave a
    /// balanced event stream behind.
    #[test]
    fn chaos_event_stream_balances(seed in 0u64..1_000_000) {
        let _g = guard();
        telemetry::reset();
        telemetry::enable();
        let cfg = ChaosConfig {
            seed,
            threads: 3,
            ops_per_thread: 80,
            maps: 2,
            key_range: 8,
            lock_timeout: Duration::from_millis(200),
            delay_ppm: 0,
            timeout_ppm: 15_000,
            panic_ppm: 15_000,
            retry: None,
        };
        let report = run_chaos(&cfg).expect("chaos invariants");
        telemetry::disable();
        let (events, dropped) = telemetry::snapshot();
        telemetry::reset();
        assert_eq!(dropped, 0, "ring overflow would break the balance check");
        assert!(!events.is_empty(), "telemetry recorded nothing: {report:?}");
        if let Err(e) = telemetry::check_balanced(&events) {
            panic!("unbalanced stream (seed {seed}): {e}\nreport: {report:?}");
        }
    }
}

/// Satellite 1b: an interpreted multi-threaded driver run with telemetry
/// on yields a balanced stream attributed to the compiler-stamped sites.
#[test]
fn interp_driver_stream_balances() {
    use interp::{Env, Interp, Strategy};
    use synth::ir::{e::*, ptr, scalar, AtomicSection, Body};
    use synth::{ClassRegistry, Synthesizer};

    let _g = guard();
    let mut registry = ClassRegistry::new();
    registry.register("Map", adts::schema_of("Map"), adts::spec_of("Map"));
    let section = AtomicSection::new(
        "counter",
        [ptr("map", "Map"), scalar("k"), scalar("v")],
        Body::new()
            .call_into("v", "map", "get", vec![var("k")])
            .if_else(
                is_null(var("v")),
                Body::new().call("map", "put", vec![var("k"), konst(1)]),
                Body::new().call("map", "put", vec![var("k"), add(var("v"), konst(1))]),
            )
            .build(),
    );
    let program = Arc::new(
        Synthesizer::new(registry)
            .phi(Phi::fib(16))
            .synthesize(&[section]),
    );
    let stamped: Vec<u32> = program.sections[0]
        .sites
        .iter()
        .map(|s| s.stable_id)
        .collect();
    assert!(stamped.iter().all(|&id| id != 0 && id != u32::MAX));
    let env = Arc::new(Env::new(program));
    let map = env.new_instance("Map");
    let interp = Arc::new(Interp::new(env, Strategy::Semantic));

    telemetry::reset();
    telemetry::enable();
    workloads::driver::run_fixed_ops(4, 150, 11, &|t, _| {
        let k = Value((t as u64 * 31) % 8);
        interp.run("counter", &[("map", map), ("k", k)]);
    });
    telemetry::disable();
    let (events, dropped) = telemetry::snapshot();
    telemetry::reset();
    assert_eq!(dropped, 0);
    telemetry::check_balanced(&events).expect("interp driver stream balances");
    // Every admit is attributed to a compiler-stamped site, never the
    // "no site" sentinel.
    let admits: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::Admit)
        .collect();
    assert!(!admits.is_empty());
    assert!(
        admits.iter().all(|e| stamped.contains(&e.site)),
        "an admit carries an unstamped site id"
    );
}

/// Satellite 2: a deterministic two-transaction deadlock. The watchdog
/// aborts the cycle; the `CycleAborted` telemetry record's member list
/// must match the `WouldDeadlock` error payload.
#[test]
fn cycle_abort_event_matches_would_deadlock_payload() {
    const SITE_A: u32 = 0xA11CE;
    const SITE_B: u32 = 0xB0B;

    let _g = guard();
    telemetry::reset();
    telemetry::enable();

    let (table, site) = cia_table(8);
    let mode = table.select(site, &[Value(7)]); // self-conflicting
    let a = SemLock::new(table.clone());
    let b = SemLock::new(table.clone());
    let gate = Barrier::new(2);
    let errors: Mutex<Vec<LockError>> = Mutex::new(Vec::new());

    let run = |first: &SemLock, second: &SemLock, site_id: u32| {
        let mut txn = Txn::new();
        telemetry::set_site(site_id);
        txn.lv(first, mode);
        gate.wait();
        telemetry::set_site(site_id);
        match txn.lv_timeout(second, mode, Duration::from_secs(10)) {
            Ok(()) => {}
            Err(e) => errors.lock().unwrap().push(e),
        }
        // Drop releases whatever the transaction still holds.
    };
    std::thread::scope(|scope| {
        scope.spawn(|| run(&a, &b, SITE_A));
        scope.spawn(|| run(&b, &a, SITE_B));
    });
    telemetry::disable();
    let (events, dropped) = telemetry::snapshot();
    let cycles = telemetry::cycles();
    telemetry::reset();

    let errors = errors.into_inner().unwrap();
    assert_eq!(errors.len(), 1, "exactly one txn aborts: {errors:?}");
    let LockError::WouldDeadlock {
        instance,
        mode: err_mode,
        cycle,
    } = &errors[0]
    else {
        panic!("expected WouldDeadlock, got {}", errors[0]);
    };

    assert_eq!(cycles.len(), 1, "one cycle record: {cycles:?}");
    let rec = &cycles[0];
    assert_eq!(&rec.members, cycle, "cycle record members match payload");
    assert_eq!(rec.instance, *instance);
    assert_eq!(rec.mode, err_mode.0);
    assert!(rec.site == SITE_A || rec.site == SITE_B);
    assert!(
        cycle.contains(&rec.txn),
        "the aborting txn is a member of its own cycle"
    );

    assert_eq!(dropped, 0);
    let aborts: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::CycleAborted)
        .collect();
    assert_eq!(aborts.len(), 1, "one CycleAborted event");
    assert_eq!(aborts[0].txn, rec.txn);
    assert_eq!(aborts[0].instance, *instance);
    assert_eq!(aborts[0].site, rec.site);
    telemetry::check_balanced(&events).expect("deadlock stream balances");
}

/// Satellite 4: stable site ids are a pure function of the synthesized
/// program — recompiling Fig. 1 / Fig. 7 yields identical ids, and ids
/// are unique within a program.
#[test]
fn site_ids_identical_across_recompiles() {
    use synth::ir::{fig1_section, fig7_section};
    use synth::{ClassRegistry, Synthesizer};

    fn registry() -> ClassRegistry {
        let mut r = ClassRegistry::new();
        for class in ["Map", "Set", "Queue"] {
            r.register(class, adts::schema_of(class), adts::spec_of(class));
        }
        r
    }
    fn compile_ids() -> Vec<(String, Vec<u32>)> {
        let out = Synthesizer::new(registry())
            .phi(Phi::fib(16))
            .synthesize(&[fig1_section(), fig7_section()]);
        out.sections
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    s.sites.iter().map(|d| d.stable_id).collect(),
                )
            })
            .collect()
    }

    let first = compile_ids();
    for _ in 0..3 {
        assert_eq!(compile_ids(), first, "site ids drift across recompiles");
    }
    let all: Vec<u32> = first.iter().flat_map(|(_, ids)| ids.clone()).collect();
    assert!(!all.is_empty());
    assert!(
        all.iter().all(|&id| id != 0 && id != u32::MAX),
        "ids avoid the unstamped / no-site sentinels: {all:?}"
    );
    let mut dedup = all.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), all.len(), "site ids collide: {all:?}");
}

/// Satellite 3 (instance level): a double release is refused in release
/// builds too — the counter is untouched, the instance poisons, and the
/// failure is observable both as an error and as telemetry. Driven under
/// *both* explicit counter layouts: the packed single-word representation
/// must refuse exactly like the wide fallback (its 7-bit field neither
/// saturates nor borrows), not just under whatever `Auto` picks.
#[test]
fn double_release_refused_poisons_and_reports() {
    use semlock::AdmissionBackend;
    use semlock::WaitStrategy;

    let _g = guard();
    for backend in [AdmissionBackend::Packed, AdmissionBackend::Wide] {
        let (table, site) = cia_table(8);
        let mode = table.select(site, &[Value(3)]);
        let lock = SemLock::with_backend(table, WaitStrategy::Block, backend);

        telemetry::reset();
        telemetry::enable();
        lock.lock(mode);
        lock.unlock_checked(mode).expect("first release succeeds");
        let err = lock
            .unlock_checked(mode)
            .expect_err("second release refused");
        telemetry::disable();
        let (events, _) = telemetry::snapshot();
        telemetry::reset();

        assert!(
            matches!(err, LockError::UnlockUnderflow { instance, mode: m }
                if instance == lock.unique() && m == mode),
            "{backend:?}: {err}"
        );
        assert!(
            lock.is_poisoned(),
            "{backend:?}: refused double release poisons"
        );
        assert_eq!(lock.underflow_count(), 1, "{backend:?}");
        assert_eq!(
            lock.total_holds(),
            0,
            "{backend:?}: the counter never underflowed"
        );
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::UnlockUnderflow && e.instance == lock.unique()),
            "{backend:?}: an UnlockUnderflow event is emitted"
        );

        // The instance recovers through the normal escape hatch.
        lock.clear_poison();
        lock.lock(mode);
        lock.unlock_checked(mode)
            .unwrap_or_else(|e| panic!("{backend:?}: usable after recovery: {e}"));
    }
}

/// The watchdog's `CycleAborted` path under both explicit counter
/// layouts. The probe/abort machinery lives in the bounded wait loops of
/// `Mech::lock_deadline`, which differ per layout (packed parks under the
/// WAITERS bit, wide under the internal mutex), so a cycle must be broken
/// — with the abort surfacing as both `WouldDeadlock` and a
/// `CycleAborted` event — whichever representation serves the partition.
#[test]
fn cycle_abort_fires_under_both_mech_layouts() {
    use semlock::AdmissionBackend;
    use semlock::WaitStrategy;

    let _g = guard();
    for backend in [AdmissionBackend::Packed, AdmissionBackend::Wide] {
        telemetry::reset();
        telemetry::enable();

        let (table, site) = cia_table(8);
        let mode = table.select(site, &[Value(7)]); // self-conflicting
        let a = SemLock::with_backend(table.clone(), WaitStrategy::Block, backend);
        let b = SemLock::with_backend(table.clone(), WaitStrategy::Block, backend);
        let gate = Barrier::new(2);
        let errors: Mutex<Vec<LockError>> = Mutex::new(Vec::new());

        let run = |first: &SemLock, second: &SemLock| {
            let mut txn = Txn::new();
            txn.lv(first, mode);
            gate.wait();
            if let Err(e) = txn.lv_timeout(second, mode, Duration::from_secs(10)) {
                errors.lock().unwrap().push(e);
            }
        };
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            scope.spawn(|| run(&a, &b));
            scope.spawn(|| run(&b, &a));
        });
        telemetry::disable();
        let (events, _) = telemetry::snapshot();
        telemetry::reset();

        assert!(
            start.elapsed() < Duration::from_secs(8),
            "{backend:?}: watchdog did not break the cycle before the deadline"
        );
        let errors = errors.into_inner().unwrap();
        assert_eq!(errors.len(), 1, "{backend:?}: exactly one txn aborts");
        assert!(
            matches!(errors[0], LockError::WouldDeadlock { .. }),
            "{backend:?}: {}",
            errors[0]
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == EventKind::CycleAborted)
                .count(),
            1,
            "{backend:?}: one CycleAborted event"
        );
        assert_eq!(a.total_holds() + b.total_holds(), 0, "{backend:?}");
    }
}

/// With the flag off, the whole stack records nothing — the disabled
/// path is a branch, not a buffer.
#[test]
fn disabled_flag_records_nothing() {
    let _g = guard();
    telemetry::reset();
    telemetry::disable();
    let (table, site) = cia_table(8);
    let mode = table.select(site, &[Value(1)]);
    let lock = SemLock::new(table);
    for _ in 0..100 {
        let mut txn = Txn::new();
        txn.lv(&lock, mode);
        txn.unlock_all();
    }
    let (events, dropped) = telemetry::snapshot();
    assert!(events.is_empty());
    assert_eq!(dropped, 0);
}
