//! Golden tests: the synthesis pipeline's output on the paper's running
//! example must match the paper's figures stage by stage.

use synth::classes::Classes;
use synth::insertion::insert_locking;
use synth::ir::fig1_section;
use synth::opt;
use synth::order::LockOrder;
use synth::restrictions::{ClassRegistry, RestrictionsGraph};
use synth::Synthesizer;

fn registry() -> ClassRegistry {
    let mut r = ClassRegistry::new();
    for class in ["Map", "Set", "Queue"] {
        r.register(class, adts::schema_of(class), adts::spec_of(class));
    }
    r
}

fn normalize(s: &str) -> Vec<String> {
    s.lines()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty() && !l.starts_with("atomic {") && *l != "}")
        .collect()
}

#[test]
fn fig14_naive_insertion_golden() {
    let section = fig1_section();
    let graph = RestrictionsGraph::build(std::slice::from_ref(&section));
    let order = LockOrder::compute(&graph);
    let inst = insert_locking(&section, &graph, &order);
    let expected = "\
atomic {
  LV(map);
  set = map.get(id);
  if(set==null) {
    set = new Set();
    LV(map);
    map.put(id,set);
  }
  LV(map);
  LV(set);
  set.add(x);
  LV(map);
  LV(set);
  set.add(y);
  if(flag) {
    LV(map);
    LV(queue);
    queue.enqueue(set);
    LV(map);
    map.remove(id);
  }
  foreach(t : LOCAL_SET) t.unlockAll();
}";
    assert_eq!(
        normalize(&inst.to_string()),
        normalize(expected),
        "\n{inst}"
    );
}

#[test]
fn fig17_optimized_golden() {
    let section = fig1_section();
    let graph = RestrictionsGraph::build(std::slice::from_ref(&section));
    let order = LockOrder::compute(&graph);
    let mut inst = insert_locking(&section, &graph, &order);
    opt::optimize(&mut inst);
    let expected = "\
atomic {
  map.lock(+);
  set = map.get(id);
  if(set==null) {
    set = new Set();
    map.put(id,set);
  }
  set.lock(+);
  set.add(x);
  set.add(y);
  if(flag) {
    queue.lock(+);
    queue.enqueue(set);
    queue.unlockAll();
    map.remove(id);
  }
  map.unlockAll();
  set.unlockAll();
}";
    assert_eq!(
        normalize(&inst.to_string()),
        normalize(expected),
        "\n{inst}"
    );
}

#[test]
fn fig2_refined_golden() {
    let section = fig1_section();
    let graph = RestrictionsGraph::build(std::slice::from_ref(&section));
    let order = LockOrder::compute(&graph);
    let mut inst = insert_locking(&section, &graph, &order);
    opt::optimize(&mut inst);
    let classes = Classes::collect(std::slice::from_ref(&inst));
    synth::future::refine_sites(&mut inst, &classes, &registry());
    let expected = "\
atomic {
  map.lock({get(id),put(id,*),remove(id)});
  set = map.get(id);
  if(set==null) {
    set = new Set();
    map.put(id,set);
  }
  set.lock({add(x),add(y)});
  set.add(x);
  set.add(y);
  if(flag) {
    queue.lock({enqueue(set)});
    queue.enqueue(set);
    queue.unlockAll();
    map.remove(id);
  }
  map.unlockAll();
  set.unlockAll();
}";
    assert_eq!(
        normalize(&inst.to_string()),
        normalize(expected),
        "\n{inst}"
    );
}

#[test]
fn full_pipeline_produces_fig2_directly() {
    let out = Synthesizer::new(registry()).synthesize(&[fig1_section()]);
    let text = out.sections[0].to_string();
    assert!(
        text.contains("map.lock({get(id),put(id,*),remove(id)});"),
        "{text}"
    );
    assert!(text.contains("set.lock({add(x),add(y)});"), "{text}");
    assert!(text.contains("queue.lock({enqueue(set)});"), "{text}");
    // Early release of the queue inside the branch (Fig. 2 line 8).
    assert!(text.contains("queue.unlockAll();"), "{text}");
}

#[test]
fn fig15_global_wrapper_golden() {
    // Fig. 9's loop section is rewritten to lock a single global wrapper
    // (Fig. 15's GlobalWrapper1 / p1).
    let out = Synthesizer::new(registry()).synthesize(&[synth::ir::fig9_section()]);
    assert_eq!(out.wrappers.len(), 1);
    let w = &out.wrappers[0];
    assert_eq!(w.name, "GlobalWrapper1");
    assert_eq!(w.pointer, "p1");
    let text = out.sections[0].to_string();
    assert!(text.contains("p1.Set_size(set)"), "{text}");
    assert!(!text.contains("set.size()"), "{text}");
}
