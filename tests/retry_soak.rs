//! Soak tests for the abort-retry runtime (PR 7):
//!
//! * **Eventual completion** — `Interp::run_with_retry` under arbitrary
//!   seeded `FaultPlan`s, on both execution engines, completes every
//!   transaction: no livelock, no leaked mode holds, and the telemetry
//!   event stream stays balanced *across* attempts (each attempt is its
//!   own balanced acquire/terminal episode under a fresh txn id).
//! * **Starvation escalation** — a repeatedly-aborted eldest transaction
//!   (smallest txn ids via `with_txn_ids`) ages into the escalated
//!   pessimistic path and still finishes under live contention.
//! * **Server SLO** — the open-loop server workload with injected faults
//!   eventually completes ≥99% of non-shed requests with a settled
//!   outcome ledger across ten chaos-soak seeds.
//!
//! `SEMLOCK_CHAOS_OPS` scales the iteration counts (the CI `server-soak`
//! job raises it in `--release`; the default keeps plain `cargo test`
//! quick).

use interp::{Engine, Env, Interp, Strategy};
use proptest::prelude::*;
use semlock::fault::{self, FaultPlan};
use semlock::retry::RetryPolicy;
use semlock::telemetry;
use semlock::value::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use workloads::interp_chaos::counter_section;
use workloads::{run_server, ServerConfig};

fn chaos_ops() -> u64 {
    std::env::var("SEMLOCK_CHAOS_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250)
}

/// Serializes the telemetry-toggling tests in this binary (the enabled
/// flag and the event rings are process-global).
fn guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// The retry escalation state machine over the Dwcas + claim-stack park
/// path: contending threads acquire a high-half mode of a 16-mode
/// partition with deadlines tight enough to abort constantly, walk every
/// abort through `RetryPolicy::on_abort` (backoff → escalation), and
/// count each re-run into the process-wide [`RetryCounters`]. Every
/// logical op must eventually complete, the counters must balance
/// exactly against the locally observed aborts, and the mech must be
/// spotless at quiescence (no holds, no waiter nodes, no summary bit).
#[test]
fn retry_counters_balance_over_dwcas_claim_stack() {
    use semlock::mech::{Mech, MechLayout, WaitStrategy};
    retry_balance_soak(Arc::new(Mech::with_layout(
        16,
        WaitStrategy::Block,
        MechLayout::Dwcas,
    )));
}

/// The same abort-retry balance obligation holds for the non-word
/// admission backends: the conflict-graph transcription and the
/// optimistic try-then-block hybrid must keep the global retry/
/// escalation counters in exact balance with locally observed aborts
/// and come out spotless at quiescence.
#[test]
fn retry_counters_balance_on_graph_and_hybrid() {
    use semlock::admission::{ConflictGraphBackend, OptimisticHybridBackend};
    use semlock::mech::WaitStrategy;
    // 16 modes; only mode 15 conflicts (with itself), as in the word run.
    let mut rows = vec![Vec::new(); 16];
    rows[15] = vec![15u32];
    retry_balance_soak(Arc::new(ConflictGraphBackend::new(
        rows,
        WaitStrategy::Block,
    )));
    retry_balance_soak(Arc::new(OptimisticHybridBackend::new(
        16,
        WaitStrategy::Block,
    )));
}

fn retry_balance_soak(mech: Arc<dyn semlock::Admission>) {
    use semlock::error::LockError;
    use semlock::mech::{Acquire, ConflictSet, Wait};
    use semlock::retry::RetryOutcome;
    use semlock::ModeId;
    use std::sync::atomic::AtomicU64;
    use std::time::Instant;
    let _g = guard();
    let before = telemetry::retry_counters();
    let policy = Arc::new(RetryPolicy::new(11).escalate_after(3));
    let ops = chaos_ops().min(300);
    let retried = Arc::new(AtomicU64::new(0));
    let escalated = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let mech = Arc::clone(&mech);
            let policy = Arc::clone(&policy);
            let retried = Arc::clone(&retried);
            let escalated = Arc::clone(&escalated);
            scope.spawn(move || {
                // Mode 15 (high half of the DWCAS word) conflicts with
                // itself: full mutual exclusion among all threads.
                let cs = ConflictSet::new(&[15]);
                for i in 0..ops {
                    let txn = t * ops + i;
                    let mut st = semlock::retry::RetryState::new();
                    loop {
                        // Escalated attempts get the policy's patience
                        // budget; ordinary ones a deliberately tiny
                        // deadline so aborts are common.
                        let wait = if st.escalated() {
                            policy.patience_budget()
                        } else {
                            Duration::from_micros(30)
                        };
                        let got = mech
                            .lock_deadline(15, cs, Instant::now() + wait, &mut || Wait::Continue);
                        if got == Acquire::Acquired {
                            // Hold the mode long enough that rival
                            // 30µs-deadline attempts genuinely expire —
                            // otherwise the abort path never fires and
                            // the balance checks below are vacuous.
                            let until = Instant::now() + Duration::from_micros(60);
                            while Instant::now() < until {
                                std::hint::spin_loop();
                            }
                            assert!(mech.unlock(15));
                            break;
                        }
                        let err = LockError::Timeout {
                            instance: 0,
                            mode: ModeId(15),
                            waited: wait,
                        };
                        match policy.on_abort(&mut st, txn, &err) {
                            RetryOutcome::RetryAfter(backoff) => {
                                telemetry::count_retry();
                                retried.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(backoff.min(Duration::from_micros(200)));
                            }
                            RetryOutcome::Escalate => {
                                telemetry::count_retry();
                                retried.fetch_add(1, Ordering::Relaxed);
                                if st.attempts() == 3 {
                                    telemetry::count_escalation();
                                    escalated.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            out => panic!("budget blown under pure contention: {out:?}"),
                        }
                    }
                }
            });
        }
    });
    let after = telemetry::retry_counters();
    assert!(
        retried.load(Ordering::Relaxed) > 0,
        "soak produced no aborts — the retry path was never exercised"
    );
    assert_eq!(
        after.retries - before.retries,
        retried.load(Ordering::Relaxed),
        "global retry counter out of balance with observed aborts"
    );
    assert_eq!(
        after.escalations - before.escalations,
        escalated.load(Ordering::Relaxed),
        "global escalation counter out of balance"
    );
    assert_eq!(after.exhausted, before.exhausted);
    assert_eq!(mech.held_total(), 0, "holds leaked through the retry loop");
    assert_eq!(mech.live_waiter_nodes(), 0, "waiter nodes leaked");
    assert!(!mech.waiter_summary(), "stale waiter-summary bit");
}

fn counter_program() -> Arc<synth::SynthOutput> {
    Arc::new(
        synth::Synthesizer::new(workloads::synthesis::registry())
            .phi(semlock::phi::Phi::fib(16))
            .synthesize(&[counter_section()]),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any seeded fault plan, both engines: heavy forced-timeout pressure
    /// (~half of all acquisitions abort), yet every transaction
    /// eventually completes through `run_with_retry`, no modes leak, and
    /// the telemetry stream balances attempt by attempt.
    #[test]
    fn run_with_retry_always_completes(seed in 0u64..1_000_000) {
        let _g = guard();
        fault::silence_injected_panics();
        for engine in [Engine::TreeWalk, Engine::Compiled] {
            telemetry::reset();
            telemetry::enable();
            let program = counter_program();
            let env = Arc::new(Env::new(program));
            let map = env.new_instance("Map");
            let plan = Arc::new(FaultPlan::new(seed).with_timeouts(300_000));
            let interp = Interp::new(env.clone(), Strategy::Semantic)
                .with_faults(plan)
                .with_lock_timeout(Duration::from_millis(200))
                .with_engine(engine);
            let policy = RetryPolicy::new(seed).escalate_after(8);
            let iters = chaos_ops().min(120);
            let retried = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                for t in 0..3u64 {
                    let (interp, policy, retried) = (&interp, &policy, &retried);
                    scope.spawn(move || {
                        for i in 0..iters {
                            let k = (t * 17 + i) % 8;
                            let run = interp
                                .run_with_retry("counter", &[("map", map), ("k", Value(k))], policy)
                                .unwrap_or_else(|e| {
                                    panic!("seed {seed} ({engine:?}): budget exhausted: {e}")
                                });
                            retried.fetch_add(u64::from(run.attempts > 1), Ordering::Relaxed);
                        }
                    });
                }
            });
            let retried = retried.into_inner();
            let adt = env.resolve(map);
            prop_assert_eq!(
                adt.sem().total_holds(),
                0,
                "seed {} ({:?}): modes leaked", seed, engine
            );
            telemetry::disable();
            let (events, dropped) = telemetry::snapshot();
            telemetry::reset();
            prop_assert_eq!(dropped, 0u64, "ring overflow breaks the balance check");
            prop_assert!(!events.is_empty(), "telemetry recorded nothing");
            if let Err(e) = telemetry::check_balanced(&events) {
                return Err(TestCaseError::fail(format!(
                    "seed {seed} ({engine:?}): unbalanced across attempts: {e}"
                )));
            }
            prop_assert!(
                retried > 0,
                "seed {} ({:?}): 30% forced timeouts but nothing retried", seed, engine
            );
        }
    }
}

/// The starvation rule end to end: an eldest victim (txn ids from 0 via
/// `with_txn_ids`) facing both forced timeouts and genuine contention
/// escalates after its threshold and still finishes; escalation never
/// leaks a hold.
#[test]
fn starved_eldest_escalates_and_finishes() {
    fault::silence_injected_panics();
    let program = counter_program();
    let env = Arc::new(Env::new(program));
    let map = env.new_instance("Map");
    // The victim: eldest ids, every acquisition ~60% likely to be
    // force-timed-out, escalation armed after the first abort.
    let victim = Interp::new(env.clone(), Strategy::Semantic)
        .with_faults(Arc::new(FaultPlan::new(99).with_timeouts(600_000)))
        .with_lock_timeout(Duration::from_millis(50))
        .with_txn_ids(0);
    let policy = RetryPolicy::new(99).escalate_after(1);
    // Live contention on the same key class from fault-free churners.
    let churn =
        Interp::new(env.clone(), Strategy::Semantic).with_lock_timeout(Duration::from_millis(50));
    let stop = AtomicBool::new(false);
    let mut escalated_run = None;
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (churn, stop) = (&churn, &stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = churn.try_run("counter", &[("map", map), ("k", Value(3))]);
                }
            });
        }
        // Aborts are probabilistic per (txn, step); retry until one run
        // aborts at least once — that run must have escalated (threshold
        // 1) and, having returned Ok, finished anyway.
        for _ in 0..400 {
            let run = victim
                .run_with_retry("counter", &[("map", map), ("k", Value(3))], &policy)
                .expect("victim exhausted its budget");
            if run.attempts > 1 {
                escalated_run = Some(run);
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    let run = escalated_run.expect("400 runs at 60% forced timeouts never aborted once");
    assert!(
        run.escalated,
        "aborted eldest txn did not escalate: {run:?}"
    );
    assert!(run.attempts >= 2, "{run:?}");
    // Eldest: the replay allocator handed out the smallest ids first.
    assert!(
        run.txns.iter().all(|&t| t < 10_000),
        "victim txn ids not from the eldest range: {run:?}"
    );
    let adt = env.resolve(map);
    assert_eq!(adt.sem().total_holds(), 0, "escalated path leaked a hold");
}

/// PR 7 acceptance: ten seeds of the open-loop server under injected
/// faults — ≥99% eventual completion with sheds excluded, every request
/// settled (zero livelocked), no failures leaking out of the ledger.
#[test]
fn server_soak_ten_seeds() {
    for seed in 0..10u64 {
        let mut cfg = ServerConfig::soak(seed);
        cfg.requests = (chaos_ops() * 4).max(600);
        let r = run_server(&cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(r.settled(), "seed {seed}: unsettled ledger: {r:?}");
        assert!(
            r.completion_ratio() >= 0.99,
            "seed {seed}: eventual completion {:.4} below the SLO: {r:?}",
            r.completion_ratio()
        );
        assert!(
            r.retried_completions > 0,
            "seed {seed}: faults injected but no request ever retried: {r:?}"
        );
    }
}
