//! Soak tests for the abort-retry runtime (PR 7):
//!
//! * **Eventual completion** — `Interp::run_with_retry` under arbitrary
//!   seeded `FaultPlan`s, on both execution engines, completes every
//!   transaction: no livelock, no leaked mode holds, and the telemetry
//!   event stream stays balanced *across* attempts (each attempt is its
//!   own balanced acquire/terminal episode under a fresh txn id).
//! * **Starvation escalation** — a repeatedly-aborted eldest transaction
//!   (smallest txn ids via `with_txn_ids`) ages into the escalated
//!   pessimistic path and still finishes under live contention.
//! * **Server SLO** — the open-loop server workload with injected faults
//!   eventually completes ≥99% of non-shed requests with a settled
//!   outcome ledger across ten chaos-soak seeds.
//!
//! `SEMLOCK_CHAOS_OPS` scales the iteration counts (the CI `server-soak`
//! job raises it in `--release`; the default keeps plain `cargo test`
//! quick).

use interp::{Engine, Env, Interp, Strategy};
use proptest::prelude::*;
use semlock::fault::{self, FaultPlan};
use semlock::retry::RetryPolicy;
use semlock::telemetry;
use semlock::value::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use workloads::interp_chaos::counter_section;
use workloads::{run_server, ServerConfig};

fn chaos_ops() -> u64 {
    std::env::var("SEMLOCK_CHAOS_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250)
}

/// Serializes the telemetry-toggling tests in this binary (the enabled
/// flag and the event rings are process-global).
fn guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn counter_program() -> Arc<synth::SynthOutput> {
    Arc::new(
        synth::Synthesizer::new(workloads::synthesis::registry())
            .phi(semlock::phi::Phi::fib(16))
            .synthesize(&[counter_section()]),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any seeded fault plan, both engines: heavy forced-timeout pressure
    /// (~half of all acquisitions abort), yet every transaction
    /// eventually completes through `run_with_retry`, no modes leak, and
    /// the telemetry stream balances attempt by attempt.
    #[test]
    fn run_with_retry_always_completes(seed in 0u64..1_000_000) {
        let _g = guard();
        fault::silence_injected_panics();
        for engine in [Engine::TreeWalk, Engine::Compiled] {
            telemetry::reset();
            telemetry::enable();
            let program = counter_program();
            let env = Arc::new(Env::new(program));
            let map = env.new_instance("Map");
            let plan = Arc::new(FaultPlan::new(seed).with_timeouts(300_000));
            let interp = Interp::new(env.clone(), Strategy::Semantic)
                .with_faults(plan)
                .with_lock_timeout(Duration::from_millis(200))
                .with_engine(engine);
            let policy = RetryPolicy::new(seed).escalate_after(8);
            let iters = chaos_ops().min(120);
            let retried = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                for t in 0..3u64 {
                    let (interp, policy, retried) = (&interp, &policy, &retried);
                    scope.spawn(move || {
                        for i in 0..iters {
                            let k = (t * 17 + i) % 8;
                            let run = interp
                                .run_with_retry("counter", &[("map", map), ("k", Value(k))], policy)
                                .unwrap_or_else(|e| {
                                    panic!("seed {seed} ({engine:?}): budget exhausted: {e}")
                                });
                            retried.fetch_add(u64::from(run.attempts > 1), Ordering::Relaxed);
                        }
                    });
                }
            });
            let retried = retried.into_inner();
            let adt = env.resolve(map);
            prop_assert_eq!(
                adt.sem().total_holds(),
                0,
                "seed {} ({:?}): modes leaked", seed, engine
            );
            telemetry::disable();
            let (events, dropped) = telemetry::snapshot();
            telemetry::reset();
            prop_assert_eq!(dropped, 0u64, "ring overflow breaks the balance check");
            prop_assert!(!events.is_empty(), "telemetry recorded nothing");
            if let Err(e) = telemetry::check_balanced(&events) {
                return Err(TestCaseError::fail(format!(
                    "seed {seed} ({engine:?}): unbalanced across attempts: {e}"
                )));
            }
            prop_assert!(
                retried > 0,
                "seed {} ({:?}): 30% forced timeouts but nothing retried", seed, engine
            );
        }
    }
}

/// The starvation rule end to end: an eldest victim (txn ids from 0 via
/// `with_txn_ids`) facing both forced timeouts and genuine contention
/// escalates after its threshold and still finishes; escalation never
/// leaks a hold.
#[test]
fn starved_eldest_escalates_and_finishes() {
    fault::silence_injected_panics();
    let program = counter_program();
    let env = Arc::new(Env::new(program));
    let map = env.new_instance("Map");
    // The victim: eldest ids, every acquisition ~60% likely to be
    // force-timed-out, escalation armed after the first abort.
    let victim = Interp::new(env.clone(), Strategy::Semantic)
        .with_faults(Arc::new(FaultPlan::new(99).with_timeouts(600_000)))
        .with_lock_timeout(Duration::from_millis(50))
        .with_txn_ids(0);
    let policy = RetryPolicy::new(99).escalate_after(1);
    // Live contention on the same key class from fault-free churners.
    let churn =
        Interp::new(env.clone(), Strategy::Semantic).with_lock_timeout(Duration::from_millis(50));
    let stop = AtomicBool::new(false);
    let mut escalated_run = None;
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (churn, stop) = (&churn, &stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = churn.try_run("counter", &[("map", map), ("k", Value(3))]);
                }
            });
        }
        // Aborts are probabilistic per (txn, step); retry until one run
        // aborts at least once — that run must have escalated (threshold
        // 1) and, having returned Ok, finished anyway.
        for _ in 0..400 {
            let run = victim
                .run_with_retry("counter", &[("map", map), ("k", Value(3))], &policy)
                .expect("victim exhausted its budget");
            if run.attempts > 1 {
                escalated_run = Some(run);
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    let run = escalated_run.expect("400 runs at 60% forced timeouts never aborted once");
    assert!(
        run.escalated,
        "aborted eldest txn did not escalate: {run:?}"
    );
    assert!(run.attempts >= 2, "{run:?}");
    // Eldest: the replay allocator handed out the smallest ids first.
    assert!(
        run.txns.iter().all(|&t| t < 10_000),
        "victim txn ids not from the eldest range: {run:?}"
    );
    let adt = env.resolve(map);
    assert_eq!(adt.sem().total_holds(), 0, "escalated path leaked a hold");
}

/// PR 7 acceptance: ten seeds of the open-loop server under injected
/// faults — ≥99% eventual completion with sheds excluded, every request
/// settled (zero livelocked), no failures leaking out of the ledger.
#[test]
fn server_soak_ten_seeds() {
    for seed in 0..10u64 {
        let mut cfg = ServerConfig::soak(seed);
        cfg.requests = (chaos_ops() * 4).max(600);
        let r = run_server(&cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(r.settled(), "seed {seed}: unsettled ledger: {r:?}");
        assert!(
            r.completion_ratio() >= 0.99,
            "seed {seed}: eventual completion {:.4} below the SLO: {r:?}",
            r.completion_ratio()
        );
        assert!(
            r.retried_completions > 0,
            "seed {seed}: faults injected but no request ever retried: {r:?}"
        );
    }
}
