//! Integration tests of the static OS2PL audit pass (`synth::audit`).
//!
//! Two directions:
//!
//! * **clean** — every pipeline output (paper figures, the shipped `.sl`
//!   example programs, randomly generated sections) audits clean in every
//!   configuration (optimized, `--no-opt`, `--no-refine`);
//! * **mutation goldens** — hand-broken variants of the Fig. 1 output
//!   each trigger exactly the lint that guards the violated invariant.

use proptest::prelude::*;
use semlock::phi::Phi;
use semlock::value::Value;
use synth::audit::audit_program;
use synth::diag::Lint;
use synth::ir::{AtomicSection, Body, Expr, Stmt, VarType};
use synth::lower::LowOp;
use synth::{ClassRegistry, SynthOutput, Synthesizer};

fn registry() -> ClassRegistry {
    let mut r = ClassRegistry::new();
    for class in ["Map", "Set", "Queue", "Multimap", "WeakMap"] {
        r.register(class, adts::schema_of(class), adts::spec_of(class));
    }
    r
}

fn configs() -> [Synthesizer; 3] {
    [
        Synthesizer::new(registry()).phi(Phi::modulo(4)),
        Synthesizer::new(registry())
            .phi(Phi::modulo(4))
            .without_optimizations(),
        Synthesizer::new(registry())
            .phi(Phi::modulo(4))
            .without_refinement(),
    ]
}

// ---------------------------------------------------------------- clean

#[test]
fn paper_figures_audit_clean_in_all_configs() {
    use synth::ir::{fig1_section, fig7_section, fig9_section};
    for synth in configs() {
        for section in [fig1_section(), fig7_section(), fig9_section()] {
            let name = section.name.clone();
            let (_, report) = synth.synthesize_and_audit(&[section]);
            assert!(
                report.is_clean(),
                "{name} must audit clean:\n{}",
                report.render_text()
            );
        }
    }
}

#[test]
fn example_programs_audit_clean_in_all_configs() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("examples/programs exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("sl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let sections = synth::parse::parse_program(&src)
            .unwrap_or_else(|e| panic!("{} parses: {e}", path.display()));
        for synth in configs() {
            let (_, report) = synth.synthesize_and_audit(&sections);
            assert!(
                report.is_clean(),
                "{} must audit clean:\n{}",
                path.display(),
                report.render_text()
            );
        }
        checked += 1;
    }
    assert!(checked >= 3, "expected the shipped example programs");
}

#[test]
fn multi_section_program_audits_clean() {
    use synth::ir::{fig1_section, fig7_section, fig9_section};
    for synth in configs() {
        let (_, report) =
            synth.synthesize_and_audit(&[fig1_section(), fig7_section(), fig9_section()]);
        assert!(
            report.is_clean(),
            "combined program must audit clean:\n{}",
            report.render_text()
        );
    }
}

// ------------------------------------------------------ mutation goldens

fn fig1_output() -> SynthOutput {
    Synthesizer::new(registry())
        .phi(Phi::modulo(4))
        .synthesize(&[synth::ir::fig1_section()])
}

fn audit_mutated(out: &SynthOutput, section: AtomicSection) -> synth::audit::AuditReport {
    audit_program(
        std::slice::from_ref(&section),
        &out.tables,
        &out.registry,
        &out.class_order,
    )
}

/// Top-level position of the first statement matching the predicate.
fn position(body: &[Stmt], pred: impl Fn(&Stmt) -> bool) -> usize {
    body.iter().position(pred).expect("statement present")
}

fn is_lock_direct_of(s: &Stmt, var: &str) -> bool {
    matches!(s, Stmt::LockDirect { recv, .. } if recv == var)
}

#[test]
fn deleting_a_lock_site_is_a_semantic_race() {
    // Remove `set.lock(..)` from the Fig. 1 output: the `set.add` calls
    // are no longer dominated by any covering lock site → SL001.
    let out = fig1_output();
    let mut section = out.sections[0].clone();
    let pos = position(&section.body, |s| is_lock_direct_of(s, "set"));
    section.body.remove(pos);
    section.renumber();
    let report = audit_mutated(&out, section);
    assert!(!report.is_clean());
    assert!(report.has_lint(Lint::Sl001), "{}", report.render_text());
    let races: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.lint == Some(Lint::Sl001))
        .collect();
    assert!(
        races.iter().all(|d| d.message.contains("set.add")),
        "{}",
        report.render_text()
    );
}

#[test]
fn reordering_acquisitions_violates_the_topological_order() {
    // Swap which instance the first and second lock statements acquire:
    // Set is then locked before Map, and the Map acquisition happens while
    // a Set lock is held — against ≤ts (Map < Set) → SL003.
    let out = fig1_output();
    let mut section = out.sections[0].clone();
    let map_pos = position(&section.body, |s| is_lock_direct_of(s, "map"));
    let set_pos = position(&section.body, |s| is_lock_direct_of(s, "set"));
    let Stmt::LockDirect {
        recv: r1, site: s1, ..
    } = section.body[map_pos].clone()
    else {
        panic!()
    };
    let Stmt::LockDirect {
        recv: r2, site: s2, ..
    } = section.body[set_pos].clone()
    else {
        panic!()
    };
    if let Stmt::LockDirect { recv, site, .. } = &mut section.body[map_pos] {
        *recv = r2;
        *site = s2;
    }
    if let Stmt::LockDirect { recv, site, .. } = &mut section.body[set_pos] {
        *recv = r1;
        *site = s1;
    }
    section.renumber();
    let report = audit_mutated(&out, section);
    assert!(!report.is_clean());
    assert!(report.has_lint(Lint::Sl003), "{}", report.render_text());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.lint == Some(Lint::Sl003) && d.message.contains("topological")),
        "{}",
        report.render_text()
    );
}

#[test]
fn releasing_before_a_lock_site_breaks_two_phase() {
    // Move `map.unlockAll()` from the epilogue position to the top of the
    // section: every later acquisition is reachable after a release point
    // → SL002.
    let out = fig1_output();
    let mut section = out.sections[0].clone();
    let pos = position(
        &section.body,
        |s| matches!(s, Stmt::UnlockAllOf { recv, .. } if recv == "map"),
    );
    let unlock = section.body.remove(pos);
    section.body.insert(0, unlock);
    section.renumber();
    let report = audit_mutated(&out, section);
    assert!(!report.is_clean());
    assert!(report.has_lint(Lint::Sl002), "{}", report.render_text());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.lint == Some(Lint::Sl002) && d.message.contains("release point")),
        "{}",
        report.render_text()
    );
}

#[test]
fn altering_a_site_symset_without_rebuilding_tables_is_unsound() {
    // Widen the map site's declared symbolic set to lock(+) while the mode
    // table still holds the refined set: the registered modes no longer
    // subsume the operations the IR declares for the site → SL005.
    let out = fig1_output();
    let mut section = out.sections[0].clone();
    let map_pos = position(&section.body, |s| is_lock_direct_of(s, "map"));
    let Stmt::LockDirect { site, .. } = section.body[map_pos] else {
        panic!()
    };
    section.sites[site].symset = None;
    let report = audit_mutated(&out, section);
    assert!(!report.is_clean());
    assert!(report.has_lint(Lint::Sl005), "{}", report.render_text());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.lint == Some(Lint::Sl005) && d.message.contains("different")),
        "{}",
        report.render_text()
    );
}

#[test]
fn uninstrumented_input_fails_wholesale() {
    // The raw (pre-synthesis) Fig. 1 section has no locks at all: every
    // ADT call is a race.
    let out = fig1_output();
    let raw = synth::ir::fig1_section();
    let report = audit_mutated(&out, raw);
    assert!(!report.is_clean());
    assert!(report.has_lint(Lint::Sl001));
    assert!(!report.has_lint(Lint::Sl002));
    assert!(!report.has_lint(Lint::Sl003));
}

// ------------------------------------------------- tape mutation goldens
//
// The SL006–SL008 lints guard the *lowered* form: hand-broken tapes must
// trigger exactly the lint whose invariant the mutation violates, while
// the pristine lowering of the same section stays clean.

fn fig1_tape(out: &SynthOutput) -> synth::lower::Tape {
    synth::lower::lower_section(&out.sections[0], &out.tables)
}

fn tape_lints(out: &SynthOutput, tape: &synth::lower::Tape) -> Vec<synth::diag::Diagnostic> {
    synth::tape_audit::audit_tape(tape, &out.sections[0], &out.tables, &out.registry)
}

fn has_lint(diags: &[synth::diag::Diagnostic], lint: Lint) -> bool {
    diags.iter().any(|d| d.lint == Some(lint))
}

#[test]
fn pristine_lowering_passes_the_tape_lints() {
    let out = fig1_output();
    let tape = fig1_tape(&out);
    let diags = tape_lints(&out, &tape);
    assert!(
        diags.is_empty(),
        "pristine tape must pass SL006–SL008: {diags:#?}"
    );
}

#[test]
fn reordered_release_on_the_tape_is_flagged() {
    // Swap the first acquisition with the last release (in place, so jump
    // offsets stay valid): the release now dominates the remaining Lock
    // ops → SL007, and the event order diverges from the CFG → SL006.
    let out = fig1_output();
    let mut tape = fig1_tape(&out);
    let lock = tape
        .ops
        .iter()
        .position(|op| matches!(op, LowOp::Lock { .. }))
        .expect("fig1 tape has a Lock op");
    let unlock = tape
        .ops
        .iter()
        .rposition(|op| matches!(op, LowOp::UnlockAllOf { .. }))
        .expect("fig1 tape has an UnlockAllOf op");
    assert!(lock < unlock);
    tape.ops.swap(lock, unlock);
    let diags = tape_lints(&out, &tape);
    assert!(has_lint(&diags, Lint::Sl007), "{diags:#?}");
    assert!(
        diags
            .iter()
            .any(|d| d.lint == Some(Lint::Sl007)
                && d.message.contains("acquires after a release point")),
        "{diags:#?}"
    );
    assert!(has_lint(&diags, Lint::Sl006), "{diags:#?}");
}

#[test]
fn jump_skipped_acquisition_on_the_tape_is_flagged() {
    // Patch the first acquisition op into a jump that skips it: the tape
    // silently drops a lock event the section CFG requires on every path
    // → SL006 (with the missing acquisition named in the notes).
    let out = fig1_output();
    let mut tape = fig1_tape(&out);
    let lock = tape
        .ops
        .iter()
        .position(|op| matches!(op, LowOp::Lock { .. }))
        .expect("fig1 tape has a Lock op");
    tape.ops[lock] = LowOp::Jump { off: 0 };
    let diags = tape_lints(&out, &tape);
    assert!(has_lint(&diags, Lint::Sl006), "{diags:#?}");
    let d = diags.iter().find(|d| d.lint == Some(Lint::Sl006)).unwrap();
    assert!(
        d.notes.iter().any(|n| n.contains("CFG-only event path")),
        "{diags:#?}"
    );
}

#[test]
fn mismatched_site_resolution_on_the_tape_is_flagged() {
    // Re-point a SiteRef at a different runtime site id than ClassTables
    // maps the declaration to: the admission path would select modes from
    // the wrong registered symbolic set → SL008.
    let out = fig1_output();
    let mut tape = fig1_tape(&out);
    assert!(!tape.sites.is_empty());
    tape.sites[0].rt_site = semlock::mode::LockSiteId(tape.sites[0].rt_site.0 + 1);
    let diags = tape_lints(&out, &tape);
    assert!(has_lint(&diags, Lint::Sl008), "{diags:#?}");

    // Dropping a key slot is a distinct SL008 failure (key arity).
    let mut tape = fig1_tape(&out);
    let keyed = tape
        .sites
        .iter()
        .position(|s| !s.key_slots.is_empty())
        .expect("fig1 has a refined keyed site");
    tape.sites[keyed].key_slots.clear();
    let diags = tape_lints(&out, &tape);
    assert!(
        diags
            .iter()
            .any(|d| d.lint == Some(Lint::Sl008) && d.message.contains("key")),
        "{diags:#?}"
    );
}

#[test]
fn tape_lints_surface_through_synth_output_audit() {
    // `SynthOutput::audit` (and therefore `semlockc check`) runs the tape
    // lints automatically: a program whose IR audits clean also has its
    // lowering checked. The clean direction is covered by the paper-figure
    // and random-section tests above; pin the catalog here.
    let out = fig1_output();
    let report = out.audit();
    assert!(report.is_clean(), "{}", report.render_text());
    for lint in [Lint::Sl006, Lint::Sl007, Lint::Sl008] {
        assert!(!report.has_lint(lint));
    }
}

#[test]
fn compiled_sections_resolve_sites_consistently() {
    // SL008 over the compiler's own facts: the mode table + runtime site
    // id pairs `interp::compile` binds must match the synthesized program
    // exactly (Task: every `SiteRef` resolved by the engine carries a
    // mode table consistent with the section's registered symbolic set).
    use std::sync::Arc;
    let out = Synthesizer::new(registry())
        .phi(Phi::modulo(4))
        .synthesize(&[
            synth::ir::fig1_section(),
            synth::ir::fig7_section(),
            synth::ir::fig9_section(),
        ]);
    let env = interp::Env::new(Arc::new(out));
    let mut n_sites = 0;
    for (_, compiled) in interp::compile::compile_program(&env) {
        let facts = compiled.site_facts();
        n_sites += facts.len();
        let diags = synth::tape_audit::check_resolved_sites(&facts, &env.program);
        assert!(diags.is_empty(), "{}: {diags:#?}", compiled.name());
    }
    assert!(n_sites > 0, "compiled program resolved no lock sites");

    // And a corrupted fact is caught.
    let compiled = interp::compile::compile_program(&env);
    let mut facts = compiled
        .iter()
        .map(|(_, c)| c.site_facts())
        .find(|f| !f.is_empty())
        .expect("some section resolves sites");
    facts[0].stable_id ^= 1;
    let diags = synth::tape_audit::check_resolved_sites(&facts, &env.program);
    assert!(
        diags.iter().any(|d| d.lint == Some(Lint::Sl008)),
        "{diags:#?}"
    );
}

// ------------------------------------------------------ random programs

/// Mirror of the `tests/properties.rs` generator: calls and branches over
/// two Maps and a Set (all parameters), scalar keys `k0..k2`.
#[derive(Debug, Clone)]
enum GenStmt {
    Call {
        recv: u8,
        method: u8,
        key: u8,
        ret: bool,
    },
    If {
        key: u8,
        then_branch: Vec<GenStmt>,
        else_branch: Vec<GenStmt>,
    },
}

fn arb_stmt(depth: u32) -> BoxedStrategy<GenStmt> {
    let call = (0u8..3, 0u8..4, 0u8..3, any::<bool>()).prop_map(|(recv, method, key, ret)| {
        GenStmt::Call {
            recv,
            method,
            key,
            ret,
        }
    });
    if depth == 0 {
        call.boxed()
    } else {
        prop_oneof![
            3 => call,
            1 => (
                0u8..3,
                proptest::collection::vec(arb_stmt(depth - 1), 1..3),
                proptest::collection::vec(arb_stmt(depth - 1), 0..2),
            )
                .prop_map(|(key, then_branch, else_branch)| GenStmt::If {
                    key,
                    then_branch,
                    else_branch
                }),
        ]
        .boxed()
    }
}

fn lower(stmts: &[GenStmt], body: Body, tmp: &mut usize) -> Body {
    let mut body = body;
    for s in stmts {
        body = match s {
            GenStmt::Call {
                recv,
                method,
                key,
                ret,
            } => {
                let key_var = format!("k{key}");
                let (recv_name, method_name, args): (&str, &str, Vec<Expr>) = match recv % 3 {
                    0 | 1 => {
                        let r = if recv % 3 == 0 { "m1" } else { "m2" };
                        match method % 4 {
                            0 => (r, "get", vec![Expr::Var(key_var)]),
                            1 => (r, "put", vec![Expr::Var(key_var), Expr::Const(Value(1))]),
                            2 => (r, "remove", vec![Expr::Var(key_var)]),
                            _ => (r, "containsKey", vec![Expr::Var(key_var)]),
                        }
                    }
                    _ => match method % 3 {
                        0 => ("s", "add", vec![Expr::Var(key_var)]),
                        1 => ("s", "remove", vec![Expr::Var(key_var)]),
                        _ => ("s", "contains", vec![Expr::Var(key_var)]),
                    },
                };
                if *ret {
                    *tmp += 1;
                    let t = format!("t{tmp}");
                    body.call_into(&t, recv_name, method_name, args)
                } else {
                    body.call(recv_name, method_name, args)
                }
            }
            GenStmt::If {
                key,
                then_branch,
                else_branch,
            } => {
                let cond = Expr::Var(format!("k{key}"));
                let tb = lower(then_branch, Body::new(), tmp);
                let eb = lower(else_branch, Body::new(), tmp);
                body.if_else(cond, tb, eb)
            }
        };
    }
    body
}

fn build_section(stmts: &[GenStmt]) -> AtomicSection {
    let mut tmp = 0usize;
    let body = lower(stmts, Body::new(), &mut tmp);
    let mut decls: Vec<(String, VarType)> = vec![
        ("m1".into(), VarType::Ptr("Map".into())),
        ("m2".into(), VarType::Ptr("Map".into())),
        ("s".into(), VarType::Ptr("Set".into())),
    ];
    for k in 0..3 {
        decls.push((format!("k{k}"), VarType::Scalar));
    }
    for t in 1..=tmp {
        decls.push((format!("t{t}"), VarType::Scalar));
    }
    AtomicSection::new("random", decls, body.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the generator produces, the synthesized instrumentation
    /// passes the audit in every configuration: the pipeline never emits
    /// a protocol violation its own verifier would flag.
    #[test]
    fn random_sections_audit_clean_in_all_configs(
        stmts in proptest::collection::vec(arb_stmt(2), 1..6),
    ) {
        for synth in configs() {
            let (_, report) = synth.synthesize_and_audit(&[build_section(&stmts)]);
            prop_assert!(
                report.is_clean(),
                "random section must audit clean:\n{}",
                report.render_text()
            );
        }
    }
}
