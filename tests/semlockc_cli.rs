//! CLI tests of `semlockc check --json`: the machine-readable output is
//! a stable contract (`semlock-audit/v2`), pinned by a golden file.
//!
//! v2 wraps the v1 per-file array in a top-level object: `schema` tag,
//! `files` (the unchanged v1 per-file objects), and `ordering_audit` (the
//! runtime's machine-checked memory-ordering table, the same
//! `semlock::mech::ORDERING_AUDIT` contract the `model` crate's
//! interleaving checker verifies mutant-by-mutant).

use std::process::Command;

fn check_json(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_semlockc"))
        .arg("check")
        .arg("--json")
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("semlockc runs");
    assert!(
        out.status.success(),
        "exit {:?}, stderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn check_json_matches_the_v2_golden() {
    let got = check_json(&["examples/programs/fig1.sl"]);
    let want = include_str!("golden/semlockc_check_fig1.json");
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "semlock-audit/v2 output drifted from the golden file; if the \
         change is deliberate, update tests/golden/semlockc_check_fig1.json \
         and bump the schema tag if the shape changed"
    );
}

#[test]
fn check_json_v2_structure() {
    // Structural guarantees tools rely on, independent of the golden's
    // exact bytes.
    let got = check_json(&["examples/programs/fig1.sl", "examples/programs/transfer.sl"]);
    assert!(
        got.starts_with("{\"schema\":\"semlock-audit/v2\","),
        "{got}"
    );
    assert!(got.contains("\"files\":["), "{got}");
    assert!(got.contains("\"ordering_audit\":["), "{got}");
    // One per-file object per input, v1 shape preserved.
    assert_eq!(got.matches("\"file\":").count(), 2, "{got}");
    assert_eq!(got.matches("\"diagnostics\":").count(), 2, "{got}");
    // The ordering-audit table carries the full site catalog with at
    // least the six seeded mutants the model checker must refute.
    for site in [
        "packed.admit.cas_ok",
        "packed.release.cas_ok",
        "wide.waiter.rmw",
        "wide.conflict.load",
        "wide.release.rmw",
        "wide.waiters.load",
    ] {
        assert!(
            got.contains(&format!("\"site\":\"{site}\"")),
            "{site} missing: {got}"
        );
    }
    let seeded = got.matches("\"mutant\":\"").count();
    assert!(seeded >= 6, "expected >= 6 seeded mutants, found {seeded}");
    // Every entry names its shipped ordering and claim.
    let entries = got.matches("\"site\":\"").count();
    assert_eq!(got.matches("\"ordering\":\"").count(), entries);
    assert_eq!(got.matches("\"claim\":\"").count(), entries);
}

#[test]
fn check_dump_tape_shows_both_tapes_and_pass_counts() {
    let out = Command::new(env!("CARGO_BIN_EXE_semlockc"))
        .arg("check")
        .arg("--dump-tape")
        .arg("--no-opt")
        .arg("examples/programs/fig1.sl")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("semlockc runs");
    assert!(out.status.success(), "exit {:?}", out.status.code());
    let got = String::from_utf8(out.stdout).expect("utf-8 output");
    // Per-section header with op counts and per-pass stats.
    assert!(got.contains("section fig1:"), "{got}");
    assert!(got.contains(" ops -> "), "{got}");
    assert!(got.contains("(fused "), "{got}");
    assert!(got.contains("hoisted "), "{got}");
    // Side-by-side columns, rendered ops on both sides.
    assert!(got.contains("pre-opt"), "{got}");
    assert!(got.contains("post-opt"), "{got}");
    assert!(got.contains("lock "), "{got}");
    assert!(got.contains("unlock_all"), "{got}");
}

#[test]
fn check_dump_tape_keeps_json_stdout_parseable() {
    // Under --json the dump goes to stderr so stdout stays the v2 document.
    let out = Command::new(env!("CARGO_BIN_EXE_semlockc"))
        .arg("check")
        .arg("--json")
        .arg("--dump-tape")
        .arg("examples/programs/fig1.sl")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("semlockc runs");
    assert!(out.status.success(), "exit {:?}", out.status.code());
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 output");
    assert!(
        stdout.starts_with("{\"schema\":\"semlock-audit/v2\","),
        "{stdout}"
    );
    assert!(!stdout.contains("pre-opt"), "{stdout}");
    assert!(stderr.contains("pre-opt"), "{stderr}");
}
