//! Heavier cross-strategy runs of the five evaluation workloads, checking
//! each workload's correctness invariant under every synchronization
//! strategy (the benchmarks must agree on semantics before their
//! performance can be compared).

use semlock::phi::Phi;
use workloads::driver::run_fixed_ops;
use workloads::{
    CacheBench, ComputeIfAbsent, GossipBench, GraphBench, IntruderBench, IntruderConfig, SyncKind,
};

const THREADS: usize = 4;
const OPS: u64 = 1_500;

#[test]
fn compute_if_absent_all_strategies() {
    for kind in SyncKind::WITH_V8 {
        let bench = ComputeIfAbsent::with_phi(kind, 256, Phi::fib(32));
        run_fixed_ops(THREADS, OPS, 42, &|t, rng| bench.op(t, rng));
        bench.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn graph_all_strategies() {
    for kind in SyncKind::STANDARD {
        let bench = GraphBench::with_phi(kind, 64, Phi::fib(8), 512);
        run_fixed_ops(THREADS, OPS, 43, &|t, rng| bench.op(t, rng));
        bench.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn cache_all_strategies() {
    for kind in SyncKind::STANDARD {
        // Small capacity: the overflow/drain path runs many times.
        let bench = CacheBench::with_phi(kind, 512, 64, Phi::fib(16));
        run_fixed_ops(THREADS, OPS, 44, &|t, rng| bench.op(t, rng));
        bench.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn intruder_all_strategies() {
    let config = IntruderConfig {
        attack_percent: 10,
        max_length: 128,
        num_flows: 600,
        seed: 7,
        max_fragments: 8,
    };
    for kind in SyncKind::STANDARD {
        let bench = IntruderBench::with_phi(kind, config, Phi::fib(32));
        let total: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS).map(|_| s.spawn(|| bench.worker())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, bench.packets_total(), "{kind}: packets lost");
        bench.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn gossip_all_strategies() {
    use semlock::value::Value;
    for kind in SyncKind::STANDARD {
        let bench = GossipBench::with_phi(kind, 4, 4, Phi::fib(16));
        let routed = std::sync::Mutex::new(vec![0u64; 4]);
        std::thread::scope(|s| {
            for t in 0..THREADS as u64 {
                let bench = &bench;
                let routed = &routed;
                s.spawn(move || {
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand::rngs::SmallRng::seed_from_u64(t);
                    let mut local = vec![0u64; 4];
                    for _ in 0..OPS {
                        let g = rng.gen_range(0..4u64);
                        bench.route(Value(g));
                        local[g as usize] += 1;
                    }
                    let mut acc = routed.lock().unwrap();
                    for (a, b) in acc.iter_mut().zip(local) {
                        *a += b;
                    }
                });
            }
        });
        bench
            .validate_routes(&routed.lock().unwrap())
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn semantic_contention_is_low_for_disjoint_keys() {
    // With many more key classes than threads, semantic locking should
    // almost never block — the mechanism's contended counter stays small
    // relative to acquisitions.
    let bench = ComputeIfAbsent::with_phi(SyncKind::Semantic, 4096, Phi::fib(64));
    run_fixed_ops(THREADS, 4_000, 45, &|t, rng| bench.op(t, rng));
    let (acquisitions, contended) = bench.contention();
    assert!(acquisitions >= 4_000 * THREADS as u64);
    assert!(
        (contended as f64) < 0.05 * acquisitions as f64,
        "contended {contended} of {acquisitions} — semantic admission too coarse"
    );
    bench.validate().unwrap();
}
