//! Chaos / fault-injection soak tests for the fault-tolerant lock runtime.
//!
//! Two layers are soaked: the native `Txn` API (via the `workloads` chaos
//! driver) and the IR interpreter (via `Interp::with_faults`). Every run
//! injects delays, forced timeouts, and panics at lock / unlock / operation
//! boundaries across 8 threads and asserts the global invariants: no hangs,
//! no hold-counter underflow, no mode leaks after panics, workload
//! validation holds, and poisoned instances reject acquirers until
//! `clear_poison`.
//!
//! `SEMLOCK_CHAOS_OPS` scales the per-thread iteration count (the CI
//! `chaos-soak` job raises it in `--release`; the default keeps plain
//! `cargo test` quick).

use interp::{Engine, Env, Interp, Strategy};
use semlock::error::LockError;
use semlock::fault::{self, FaultPlan};
use semlock::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;
use workloads::{run_chaos, ChaosConfig};

fn chaos_ops() -> u64 {
    std::env::var("SEMLOCK_CHAOS_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250)
}

/// The headline soak: ten distinct seeds, 8 threads each, every fault class
/// enabled, all invariants checked inside `run_chaos`.
#[test]
fn native_soak_ten_seeds() {
    for seed in 0..10u64 {
        let mut cfg = ChaosConfig::ci(seed);
        cfg.ops_per_thread = chaos_ops();
        let r = run_chaos(&cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(r.attempted, cfg.threads as u64 * cfg.ops_per_thread);
        assert!(r.completed > 0, "seed {seed} starved: {r:?}");
        assert!(r.injected_panics > 0, "seed {seed} injected nothing: {r:?}");
    }
}

/// Deterministic fault schedules: with a single worker (no cross-thread
/// interference changing which boundaries get crossed), the same seed must
/// replay the exact same faults and outcomes.
#[test]
fn fault_schedule_is_deterministic_per_seed() {
    let run = |seed| {
        let mut cfg = ChaosConfig::ci(seed);
        cfg.threads = 1;
        cfg.ops_per_thread = 300;
        let r = run_chaos(&cfg).unwrap();
        (
            r.completed,
            r.timeouts,
            r.injected_panics,
            r.poison_rejections,
        )
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43), "distinct seeds produced identical runs");
}

mod interp_soak {
    use super::*;
    use semlock::value::Value;
    use synth::ir::{e::*, ptr, scalar, AtomicSection, Body};
    use synth::{ClassRegistry, Synthesizer};

    fn counter_program() -> Arc<synth::SynthOutput> {
        let mut reg = ClassRegistry::new();
        reg.register("Map", adts::schema_of("Map"), adts::spec_of("Map"));
        let section = AtomicSection::new(
            "counter",
            [ptr("map", "Map"), scalar("k"), scalar("v")],
            Body::new()
                .call_into("v", "map", "get", vec![var("k")])
                .if_else(
                    is_null(var("v")),
                    Body::new().call("map", "put", vec![var("k"), konst(1)]),
                    Body::new().call("map", "put", vec![var("k"), add(var("v"), konst(1))]),
                )
                .build(),
        );
        Arc::new(
            Synthesizer::new(reg)
                .phi(semlock::phi::Phi::fib(16))
                .synthesize(&[section]),
        )
    }

    /// The interpreter under chaos: 8 threads, injected panics and forced
    /// timeouts, protocol checker attached, on **both** execution engines.
    /// Afterwards: no holds, the recorded event stream is still
    /// protocol-clean, and the counter map is within the abort-accounting
    /// bounds.
    #[test]
    fn interp_chaos_soak() {
        fault::silence_injected_panics();
        for (seed, engine) in [
            (3u64, Engine::TreeWalk),
            (17, Engine::TreeWalk),
            (99, Engine::TreeWalk),
            (3, Engine::Compiled),
            (17, Engine::Compiled),
            (99, Engine::Compiled),
        ] {
            let program = counter_program();
            let env = Arc::new(Env::new(program));
            let map = env.new_instance("Map");
            let checker = Arc::new(ProtocolChecker::new());
            let plan = Arc::new(
                FaultPlan::new(seed)
                    .with_delays(20_000, Duration::from_micros(100))
                    .with_timeouts(20_000)
                    .with_panics(20_000),
            );
            let interp = Arc::new(
                Interp::new(env.clone(), Strategy::Semantic)
                    .with_checker(checker.clone())
                    .with_faults(plan.clone())
                    .with_lock_timeout(Duration::from_millis(250))
                    .with_engine(engine),
            );
            let iters = chaos_ops();
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    let interp = interp.clone();
                    let env = env.clone();
                    scope.spawn(move || {
                        for i in 0..iters {
                            let k = (t * 31 + i) % 8;
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                interp.try_run("counter", &[("map", map), ("k", Value(k))])
                            }));
                            match r {
                                Ok(Ok(_)) | Ok(Err(_)) => {}
                                Err(payload) => {
                                    assert!(
                                        fault::injected(&*payload).is_some(),
                                        "seed {seed}: genuine panic escaped the executor"
                                    );
                                }
                            }
                            // Recover from poisoning so the soak keeps
                            // exercising the instance.
                            let adt = env.resolve(map);
                            if adt.sem().is_poisoned() {
                                adt.sem().clear_poison();
                            }
                        }
                    });
                }
            });
            let adt = env.resolve(map);
            assert_eq!(
                adt.sem().total_holds(),
                0,
                "seed {seed}: modes leaked at quiescence"
            );
            checker
                .ensure_ok()
                .unwrap_or_else(|v| panic!("seed {seed} ({engine:?}): {v}"));
        }
    }

    /// The workloads-level interpreter chaos driver on the compiled
    /// engine: multi-map, ten seeds, full invariant checking inside
    /// `run_interp_chaos`.
    #[test]
    fn compiled_engine_soak_ten_seeds() {
        for seed in 0..10u64 {
            let mut cfg = workloads::InterpChaosConfig::ci(seed, Engine::Compiled);
            cfg.ops_per_thread = chaos_ops();
            let r =
                workloads::run_interp_chaos(&cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(r.attempted, cfg.threads as u64 * cfg.ops_per_thread);
            assert!(r.completed > 0, "seed {seed} starved: {r:?}");
            assert!(r.injected_panics > 0, "seed {seed} injected nothing: {r:?}");
        }
    }
}

/// Claim-stack handoff under chaos-scale contention, on every admission
/// backend. All threads fight over one self-conflicting mode with a mix
/// of unbounded and tightly-bounded acquisitions, so the soak
/// interleaves parked waiters, timed-out stale nodes, and back-to-back
/// handoffs. The CI `chaos-soak` job raises `SEMLOCK_CHAOS_OPS` to push
/// this hard.
mod waiter_handoff_soak {
    use super::*;
    use semlock::admission::{Admission, ConflictGraphBackend, OptimisticHybridBackend};
    use semlock::mech::{Acquire, ConflictSet, Mech, MechLayout, Wait, WaitStrategy};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    #[test]
    fn backend_soak_balances_and_leaks_nothing() {
        let ops = chaos_ops();
        let backends: Vec<Arc<dyn Admission>> = vec![
            Arc::new(Mech::with_layout(
                2,
                WaitStrategy::Block,
                MechLayout::Packed,
            )),
            Arc::new(Mech::with_layout(2, WaitStrategy::Block, MechLayout::Dwcas)),
            Arc::new(Mech::with_layout(2, WaitStrategy::Block, MechLayout::Wide)),
            // Mode 0 conflicts with itself; mode 1 is a bystander.
            Arc::new(ConflictGraphBackend::new(
                vec![vec![0], Vec::new()],
                WaitStrategy::Block,
            )),
            Arc::new(OptimisticHybridBackend::new(2, WaitStrategy::Block)),
        ];
        for mech in backends {
            let name = mech.name();
            let held = Arc::new(AtomicU64::new(0));
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    let mech = Arc::clone(&mech);
                    let held = Arc::clone(&held);
                    scope.spawn(move || {
                        let cs = ConflictSet::new(&[0]);
                        for i in 0..ops {
                            let acquired = if (t + i) % 5 == 0 {
                                mech.lock_deadline(
                                    0,
                                    cs,
                                    Instant::now() + Duration::from_micros(20),
                                    &mut || Wait::Continue,
                                ) == Acquire::Acquired
                            } else {
                                mech.lock(0, cs);
                                true
                            };
                            if acquired {
                                assert_eq!(held.fetch_add(1, Ordering::AcqRel), 0);
                                assert_eq!(held.fetch_sub(1, Ordering::AcqRel), 1);
                                assert!(mech.unlock(0));
                            }
                        }
                    });
                }
            });
            assert_eq!(mech.held_total(), 0, "{name}: holds leaked");
            assert_eq!(mech.live_waiter_nodes(), 0, "{name}: nodes leaked");
            assert!(!mech.waiter_summary(), "{name}: stale summary bit");
        }
    }
}

/// Satellite: a panic in one thread's atomic section must not strand
/// conflicting acquirers in other threads.
mod cross_thread_panic {
    use super::*;
    use semlock::manager::SemLock;
    use semlock::schema::set_schema;
    use semlock::symbolic::{SymArg, SymOp, SymbolicSet};

    fn exclusive_lock() -> (Arc<semlock::mode::ModeTable>, ModeId) {
        let s = set_schema();
        let spec = CommutSpec::builder(s.clone())
            .always("add", "add")
            .differ("add", 0, "remove", 0)
            .differ("add", 0, "contains", 0)
            .never("add", "size")
            .never("add", "clear")
            .always("remove", "remove")
            .differ("remove", 0, "contains", 0)
            .never("remove", "size")
            .never("remove", "clear")
            .always("contains", "contains")
            .always("contains", "size")
            .never("contains", "clear")
            .always("size", "size")
            .never("size", "clear")
            .always("clear", "clear")
            .build();
        let mut b = ModeTable::builder(s.clone(), spec, Phi::modulo(4));
        let site = b.add_site(SymbolicSet::new(vec![
            SymOp::new(s.method("add"), vec![SymArg::Var(0)]),
            SymOp::new(s.method("remove"), vec![SymArg::Var(0)]),
        ]));
        let t = b.build();
        // add(k)/remove(k) on the same key class never commute, so this
        // mode conflicts with itself.
        let m = t.select(site, &[Value(3)]);
        (t, m)
    }

    /// Thread A panics *between* operations (nothing mutated): locks are
    /// released by the unwinding `Txn`, no poison, and thread B's
    /// conflicting acquisition proceeds.
    #[test]
    fn panic_before_mutation_frees_conflicting_acquirer() {
        let (t, m) = exclusive_lock();
        let lock = Arc::new(SemLock::new(t));
        let a = {
            let lock = lock.clone();
            std::thread::spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    let mut txn = Txn::new();
                    txn.lv(&lock, m);
                    panic!("worker died before touching the ADT");
                }));
                assert!(r.is_err());
            })
        };
        a.join().unwrap();
        // B: the conflicting mode must be admissible, with no poison.
        let mut txn = Txn::new();
        txn.try_lv(&lock, m).expect("instance should be clean");
        txn.unlock_all();
        assert_eq!(lock.total_holds(), 0);
        assert!(!lock.is_poisoned());
    }

    /// Thread A panics *inside* an ADT operation: the instance is poisoned,
    /// thread B's conflicting acquisition fails fast (no hang), and after
    /// `clear_poison` B proceeds. Counters are zero at quiescence.
    #[test]
    fn panic_mid_operation_poisons_but_never_strands() {
        let (t, m) = exclusive_lock();
        let lock = Arc::new(SemLock::new(t));
        let a = {
            let lock = lock.clone();
            std::thread::spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    let mut txn = Txn::new();
                    txn.lv(&lock, m);
                    txn.with_op(&lock, || panic!("worker died mid-operation"));
                }));
                assert!(r.is_err());
            })
        };
        a.join().unwrap();
        assert!(lock.is_poisoned());
        assert_eq!(lock.total_holds(), 0, "panicking thread leaked modes");
        let mut txn = Txn::new();
        let err = txn.try_lv(&lock, m).unwrap_err();
        assert!(matches!(err, LockError::Poisoned { .. }));
        lock.clear_poison();
        txn.try_lv(&lock, m).expect("clean after clear_poison");
        txn.unlock_all();
        assert_eq!(lock.total_holds(), 0);
    }

    /// The same scenario while B is *already blocked* on the conflicting
    /// mode: B must be woken and must observe the poison rather than being
    /// admitted onto the torn instance or hanging.
    #[test]
    fn blocked_acquirer_observes_poison() {
        let (t, m) = exclusive_lock();
        let lock = Arc::new(SemLock::new(t));
        let mut holder = Txn::new();
        holder.lv(&lock, m);
        let b = {
            let lock = lock.clone();
            std::thread::spawn(move || {
                let mut txn = Txn::new();
                txn.lv_timeout(&lock, m, Duration::from_secs(10))
            })
        };
        // Give B time to block, then simulate the holder panicking
        // mid-operation: poison, release, unwind.
        std::thread::sleep(Duration::from_millis(30));
        let r = catch_unwind(AssertUnwindSafe(|| {
            holder.with_op(&lock, || panic!("holder died mid-operation"));
        }));
        assert!(r.is_err());
        drop(holder);
        let res = b.join().unwrap();
        assert!(
            matches!(res, Err(LockError::Poisoned { .. })),
            "blocked acquirer must see poison, got {res:?}"
        );
        assert_eq!(lock.total_holds(), 0);
    }
}
