//! Run the Intruder application (§6.2) end to end under every
//! synchronization strategy and report detection results and timings.
//!
//! ```text
//! cargo run --release --example intruder_pipeline [flows] [threads]
//! ```

use std::time::Instant;
use workloads::{IntruderBench, IntruderConfig, SyncKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let flows: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4096);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let config = IntruderConfig {
        attack_percent: 10,
        max_length: 256,
        num_flows: flows,
        seed: 1,
        max_fragments: 10,
    };
    println!(
        "Intruder: {} flows, ≤{} bytes, {}% attacks, {} worker threads",
        config.num_flows, config.max_length, config.attack_percent, threads
    );

    for kind in SyncKind::STANDARD {
        let bench = IntruderBench::new(kind, config);
        let packets = bench.packets_total();
        let start = Instant::now();
        let processed: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads).map(|_| s.spawn(|| bench.worker())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let elapsed = start.elapsed();
        bench.validate().expect("intruder invariants");
        println!(
            "  {:<8} {:>8} packets in {:>8.2?} ({:>9.0} pkts/s) — all flows reassembled, all attacks detected",
            kind.label(),
            processed,
            elapsed,
            packets as f64 / elapsed.as_secs_f64(),
        );
    }
}
