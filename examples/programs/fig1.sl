// The running example of the paper (Fig. 1), in semlockc's surface syntax.
atomic fig1(map: Map, queue: Queue, id, x, y, flag) {
  set: Set;
  set = map.get(id);
  if (set == null) {
    set = new Set();
    map.put(id, set);
  }
  set.add(x);
  set.add(y);
  if (flag) {
    queue.enqueue(set);
    map.remove(id);
  }
}
