// Two atomic sections sharing two Sets: a transfer and an audit.
// The compiler orders the same-class instances dynamically (LV2) and
// keys the audit's contains-lock by value, so transfers of different
// values run in parallel.
atomic transfer(src: Set, dst: Set, v) {
  c = src.contains(v);
  if (c) {
    src.remove(v);
    dst.add(v);
  }
}

atomic audit(src: Set, dst: Set, v) {
  a = src.contains(v);
  b = dst.contains(v);
  both = a + b;
}
