// Fig. 9: the loop whose restrictions-graph is cyclic — the compiler
// synthesizes a global wrapper ADT for the Set class.
atomic fig9(map: Map, n) {
  set: Set;
  sum = 0;
  i = 0;
  while (i < n) {
    set = map.get(i);
    if (set != null) {
      sz = set.size();
      sum = sum + sz;
    }
    i = i + 1;
  }
}
