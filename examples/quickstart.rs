//! Quickstart: compile an atomic section, run it from many threads, and
//! verify atomicity and protocol compliance.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use semantic_locking::prelude::*;
use semlock::protocol::ProtocolChecker;
use std::sync::Arc;

fn main() {
    // An atomic increment over a shared Map — the classic pattern whose
    // non-atomic version loses updates.
    let section = AtomicSection::new(
        "increment",
        [ptr("map", "Map"), scalar("k"), scalar("v")],
        Body::new()
            .call_into("v", "map", "get", vec![e::var("k")])
            .if_else(
                e::is_null(e::var("v")),
                Body::new().call("map", "put", vec![e::var("k"), e::konst(1)]),
                Body::new().call(
                    "map",
                    "put",
                    vec![e::var("k"), e::add(e::var("v"), e::konst(1))],
                ),
            )
            .build(),
    );

    // Compile with the Map's commutativity specification.
    let mut registry = ClassRegistry::new();
    registry.register("Map", adts::schema_of("Map"), adts::spec_of("Map"));
    let program = Arc::new(Synthesizer::new(registry).synthesize(&[section]));

    println!("=== compiled atomic section ===");
    print!("{}", program.sections[0]);
    let table = program.tables.table("Map");
    println!(
        "Map mode table: {} modes in {} independent partitions (φ n = {})",
        table.mode_count(),
        table.partition_count(),
        table.phi().n()
    );

    // Execute from 4 threads with the OS2PL protocol checker recording.
    let env = Arc::new(Env::new(program));
    let map = env.new_instance("Map");
    let checker = Arc::new(ProtocolChecker::new());
    let interp =
        Arc::new(Interp::new(env.clone(), Strategy::Semantic).with_checker(checker.clone()));

    let threads = 4;
    let iters = 2_000u64;
    let keys = 16u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let interp = interp.clone();
            s.spawn(move || {
                for i in 0..iters {
                    let k = (t * 31 + i) % keys;
                    interp.run("increment", &[("map", map), ("k", Value(k))]);
                }
            });
        }
    });

    // Atomicity check: the sum of all counters equals the number of
    // increments performed.
    let map_adt = env.resolve(map);
    let get = map_adt.obj.schema().method("get");
    let total: u64 = (0..keys)
        .map(|k| {
            let v = map_adt.obj.invoke(get, &[Value(k)]);
            if v.is_null() {
                0
            } else {
                v.0
            }
        })
        .sum();
    println!("\n=== result ===");
    println!("increments performed: {}", threads * iters);
    println!("sum of counters:      {total}");
    assert_eq!(total, threads * iters, "atomicity violated!");

    checker.ensure_ok().unwrap();
    println!(
        "OS2PL protocol check: OK ({} recorded events)",
        checker.event_count()
    );
}
