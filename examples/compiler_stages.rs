//! Walk the paper's running example (Fig. 1) through every stage of the
//! synthesis pipeline, printing the intermediate programs that correspond
//! to the paper's figures:
//!
//! * the input atomic section (Fig. 1),
//! * the restrictions-graph and lock order (Figs. 8/11, §3.3),
//! * naive OS2PL insertion (Fig. 14),
//! * after redundant-LV removal (Fig. 26),
//! * after LOCAL_SET elimination (Fig. 27),
//! * after early lock release (Fig. 28),
//! * after null-check removal (Fig. 17),
//! * with refined symbolic sets (Fig. 2),
//! * and the generated locking modes with their commutativity function.
//!
//! ```text
//! cargo run --release --example compiler_stages
//! ```

use synth::classes::Classes;
use synth::insertion::insert_locking;
use synth::ir::fig1_section;
use synth::opt;
use synth::order::LockOrder;
use synth::restrictions::{ClassRegistry, RestrictionsGraph};
use synth::{SynthOutput, Synthesizer};

fn registry() -> ClassRegistry {
    let mut r = ClassRegistry::new();
    for class in ["Map", "Set", "Queue"] {
        r.register(class, adts::schema_of(class), adts::spec_of(class));
    }
    r
}

fn banner(title: &str) {
    println!("\n──────────────────────────────────────────────");
    println!("{title}");
    println!("──────────────────────────────────────────────");
}

fn main() {
    let section = fig1_section();

    banner("Input atomic section (Fig. 1)");
    print!("{section}");

    // Restrictions-graph and lock order.
    let graph = RestrictionsGraph::build(std::slice::from_ref(&section));
    let order = LockOrder::compute(&graph);
    banner("Restrictions-graph and lock order (§3.2–3.3)");
    let classes = graph.classes();
    for u in 0..classes.len() {
        for v in graph.succ(u) {
            println!("  edge: [{}] -> [{}]", classes.name(u), classes.name(v));
        }
    }
    let seq: Vec<&str> = order.sequence().iter().map(|&c| classes.name(c)).collect();
    println!("  lock order: {}", seq.join(" < "));

    // Stage: naive insertion (Fig. 14).
    let mut inst = insert_locking(&section, &graph, &order);
    banner("Naive OS2PL insertion (Fig. 14)");
    print!("{inst}");

    // Stage: redundant LV removal (Fig. 26).
    loop {
        let before = opt::stats(&inst);
        opt::remove_redundant_lv(&mut inst);
        if opt::stats(&inst) == before {
            break;
        }
    }
    banner("After removing redundant LV(x) (Fig. 26)");
    print!("{inst}");

    // Stage: LOCAL_SET removal (Fig. 27).
    opt::remove_local_set(&mut inst);
    banner("After removing LOCAL_SET (Fig. 27)");
    print!("{inst}");

    // Stage: early lock release (Fig. 28).
    opt::early_release(&mut inst);
    banner("After early lock release (Fig. 28)");
    print!("{inst}");

    // Stage: null-check removal (Fig. 17).
    opt::remove_null_checks(&mut inst);
    banner("After removing redundant null checks (Fig. 17)");
    print!("{inst}");

    // Stage: refined symbolic sets (Fig. 2).
    let reg = registry();
    let classes_all = Classes::collect(std::slice::from_ref(&inst));
    synth::future::refine_sites(&mut inst, &classes_all, &reg);
    banner("With refined symbolic sets (Fig. 2 / Fig. 18)");
    for (i, site) in inst.sites.iter().enumerate() {
        if site.symset.is_some() {
            let schema = reg.schema(&site.class);
            println!(
                "  site {i} on {}: lock({})",
                site.class,
                synth::emit::emit_site_named(site, schema)
            );
        }
    }
    print!("{inst}");

    // Full pipeline: the locking modes of the Map class.
    let out: SynthOutput = Synthesizer::new(registry())
        .phi(semlock::phi::Phi::modulo(4))
        .synthesize(&[fig1_section()]);
    banner("Generated locking modes (§5, with φ n = 4 for readability)");
    for class in ["Map", "Set", "Queue"] {
        let t = out.tables.table(class);
        print!("{t:?}");
        println!(
            "  → {} partitions: {:?}",
            t.partition_count(),
            t.partition_sizes()
        );
    }
}
