//! Run the GossipRouter (§6.2) under every strategy: a routing table of
//! group → member maps, MPerf-style message load, simulated client sinks.
//! Demonstrates the paper's irrevocable-I/O point: the atomic sections
//! perform (simulated) sends, which is safe precisely because semantic
//! locking never rolls back.
//!
//! ```text
//! cargo run --release --example gossip_router [messages] [threads]
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use semlock::value::Value;
use std::time::Instant;
use workloads::{GossipBench, SyncKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let messages: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(80_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let groups = 4u64;
    let members = 4u64;

    println!(
        "GossipRouter: {groups} groups × {members} members, {messages} messages, {threads} router threads"
    );

    for kind in SyncKind::STANDARD {
        let bench = GossipBench::new(kind, groups, members);
        let per_thread = messages / threads as u64;
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let bench = &bench;
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    for _ in 0..per_thread {
                        // 97% routes, 3% membership churn (new members only,
                        // keeping delivery counts monotone and checkable).
                        if rng.gen_range(0..100u64) < 97 {
                            bench.route(Value(rng.gen_range(0..groups)));
                        } else {
                            let g = rng.gen_range(0..groups);
                            let m = groups * members + rng.gen_range(0..256u64);
                            bench.register(Value(g), Value(m));
                        }
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        println!(
            "  {:<8} delivered {:>9} messages in {:>8.2?} ({:>9.0} msgs/s)",
            kind.label(),
            bench.delivered(),
            elapsed,
            bench.delivered() as f64 / elapsed.as_secs_f64(),
        );
    }
}
