//! Minimal drop-in for the subset of `rand` 0.8 used by this
//! workspace: `rngs::SmallRng`, the `Rng`/`SeedableRng` traits,
//! `gen_range` over (inclusive) integer ranges, and `gen_bool`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim. The generator is SplitMix64 feeding
//! xoshiro256**, seeded deterministically from `seed_from_u64` — not
//! the upstream algorithm, but a high-quality PRNG with the same API;
//! all in-repo uses are seeding for reproducible stress tests and
//! benchmarks, not distribution-sensitive statistics.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a range by an RNG.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift rejection-free mapping is fine for the
                // test/bench workloads in this repo (bias < 2^-64 · span).
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128 + v as u128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (start as u128 + v as u128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

/// User-facing convenience methods, blanket-implemented for every core
/// generator as in upstream rand.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // 53 random mantissa bits, exactly like upstream's f64 path.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    fn r#gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Stand-in for `rand::distributions::Standard`-sampled types.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast PRNG (xoshiro256** seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_splitmix(mut seed: u64) -> Self {
            let mut next = || {
                seed = seed.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_splitmix(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias so code written against `StdRng` also compiles.
    pub type StdRng = SmallRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(b'a'..=b'z');
            assert!(w.is_ascii_lowercase());
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
