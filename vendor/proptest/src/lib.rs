//! Minimal drop-in for the subset of `proptest` used by this
//! workspace: the `proptest!` test macro, `Strategy` with `prop_map` /
//! `boxed`, `Just`, ranges and tuples as strategies, weighted
//! `prop_oneof!`, `proptest::collection::vec`, `any::<T>()`, and the
//! `prop_assert*` macros.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim. Semantics differ from upstream in one
//! deliberate way: failing cases are reported with their deterministic
//! case seed but are **not shrunk**. Each test still runs
//! `ProptestConfig::cases` random cases, deterministically seeded per
//! (test, case) so CI failures reproduce locally.

pub mod test_runner {
    /// Error produced by a failing `prop_assert!` inside a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    pub struct TestRng {
        inner: rand::rngs::SmallRng,
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index, so
            // every (test, case) pair draws an independent stream.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            use rand::SeedableRng;
            TestRng {
                inner: rand::rngs::SmallRng::seed_from_u64(
                    h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
                ),
            }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, SampleRange};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type `Self::Value`.
    ///
    /// Unlike upstream there is no value tree: `generate` produces the
    /// final value directly and failures are not shrunk.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    #[doc(hidden)]
    pub trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy, as returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Weighted union over boxed alternatives — the desugaring of
    /// `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof! requires positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0.0, S1.1)
        (S0.0, S1.1, S2.2)
        (S0.0, S1.1, S2.2, S3.3)
        (S0.0, S1.1, S2.2, S3.3, S4.4)
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    }

    /// Types with a canonical strategy, reachable through
    /// [`crate::arbitrary::any`].
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub struct ArbFull<T>(PhantomData<T>);

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Strategy for ArbFull<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = ArbFull<$t>;
                fn arbitrary() -> Self::Strategy {
                    ArbFull(PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ArbFull<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = ArbFull<bool>;
        fn arbitrary() -> Self::Strategy {
            ArbFull(PhantomData)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Arbitrary;

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact size or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..10, ys in proptest::collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Weighted or uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, y in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..5, 1..4), w in crate::collection::vec(0u8..5, 2)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(w.len(), 2);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![2 => Just(1u64), 1 => (5u64..7).prop_map(|x| x)]) {
            prop_assert!(v == 1 || (5..7).contains(&v));
        }

        #[test]
        fn early_return_ok(x in any::<u64>()) {
            if x.is_multiple_of(2) {
                return Ok(());
            }
            prop_assert!(x % 2 == 1);
        }
    }

    #[test]
    fn runs_the_macro_tests() {
        ranges_in_bounds();
        vec_sizes();
        oneof_and_map();
        early_return_ok();
    }
}
