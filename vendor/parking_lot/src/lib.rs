//! Minimal, std-backed drop-in for the subset of `parking_lot` used by
//! this workspace: `Mutex`, `RwLock`, and `Condvar` with the
//! parking_lot calling conventions (no `Result` poisoning at the call
//! site; `Condvar::wait` takes `&mut MutexGuard`).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate. Poisoned
//! std locks are transparently recovered, matching parking_lot's
//! poison-free semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the
    // underlying std guard; it is `Some` at every other moment.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait, mirroring `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let now = std::time::Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}
