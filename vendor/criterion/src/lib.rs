//! Minimal drop-in for the subset of `criterion` used by this
//! workspace's micro-benchmarks: `Criterion::bench_function`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim. It performs a warm-up, then runs
//! timed passes for roughly `measurement_time` and prints mean
//! ns/iteration — adequate for eyeballing the micro-bench numbers,
//! without criterion's statistical analysis or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            filter: std::env::args().nth(1).filter(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some((iters, elapsed)) => {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                println!("{id:<48} {per_iter:>12.1} ns/iter ({iters} iters)");
            }
            None => println!("{id:<48} (no measurement)"),
        }
        self
    }
}

pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: discover a per-batch iteration count that keeps
        // clock overhead negligible.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters = 0u64;
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }
        let batch = (warm_iters / self.sample_size.max(1) as u64).max(1);

        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_time += start.elapsed();
            total_iters += batch;
        }
        self.report = Some((total_iters.max(1), total_time));
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine(setup()));
        }
        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_time += start.elapsed();
            total_iters += 1;
        }
        self.report = Some((total_iters.max(1), total_time));
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
