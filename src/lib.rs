//! # semantic-locking
//!
//! A complete Rust implementation of **Automatic Scalable Atomicity via
//! Semantic Locking** (Golan-Gueta, Ramalingam, Sagiv, Yahav — PPoPP
//! 2015): a compiler and runtime that implement atomic sections over
//! shared linearizable ADTs with pessimistic, rollback-free **locks on
//! ADT operations**, admitting concurrency exactly when operations
//! *commute*.
//!
//! The workspace is organized as:
//!
//! * [`semlock`] — the runtime: commutativity specifications, the
//!   abstract-value hash φ, locking modes and the commutativity function
//!   `F_c`, the Fig. 20 counter mechanism with lock partitioning,
//!   per-instance semantic locks, transaction contexts, and an OS2PL
//!   protocol checker;
//! * [`synth`] — the compiler: an atomic-section IR, the
//!   restrictions-graph, global-wrapper synthesis for cyclic programs,
//!   topological lock ordering and `LV`/`LV2` insertion, the Appendix-A
//!   optimizations, the §4 backward symbolic-set inference, and per-class
//!   mode-table generation;
//! * [`adts`] — linearizable Map/Set/Queue/Multimap/WeakMap substrates
//!   with their commutativity specifications;
//! * [`interp`] — a multi-threaded interpreter running compiled sections
//!   against live ADTs under semantic / global / 2PL synchronization;
//! * [`baselines`] — the Global, 2PL, Manual (lock striping), and V8
//!   comparison strategies of §6;
//! * [`workloads`] — the five evaluation benchmarks (ComputeIfAbsent,
//!   Graph, Cache, Intruder, GossipRouter).
//!
//! ## Quickstart
//!
//! ```
//! use semantic_locking::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Describe the program: one atomic section over a shared Map.
//! let section = AtomicSection::new(
//!     "increment",
//!     [ptr("map", "Map"), scalar("k"), scalar("v")],
//!     Body::new()
//!         .call_into("v", "map", "get", vec![e::var("k")])
//!         .if_else(
//!             e::is_null(e::var("v")),
//!             Body::new().call("map", "put", vec![e::var("k"), e::konst(1)]),
//!             Body::new().call("map", "put", vec![e::var("k"), e::add(e::var("v"), e::konst(1))]),
//!         )
//!         .build(),
//! );
//!
//! // 2. Compile: the synthesizer inserts deadlock-free semantic locking.
//! let mut registry = ClassRegistry::new();
//! registry.register("Map", adts::schema_of("Map"), adts::spec_of("Map"));
//! let program = Arc::new(Synthesizer::new(registry).synthesize(&[section]));
//!
//! // 3. Execute concurrently — transactions on commuting keys overlap.
//! let env = Arc::new(Env::new(program));
//! let map = env.new_instance("Map");
//! let interp = Interp::new(env, Strategy::Semantic);
//! interp.run("increment", &[("map", map), ("k", Value(7))]);
//! ```

pub use adts;
pub use baselines;
pub use interp;
pub use semlock;
pub use synth;
pub use workloads;

/// One-stop imports for the quickstart path.
pub mod prelude {
    pub use adts;
    pub use interp::{CompiledFrame, Engine, Env, Interp, Strategy};
    pub use semlock::prelude::*;
    pub use synth::ir::{e, ptr, scalar, AtomicSection, Body};
    pub use synth::{ClassRegistry, SynthOutput, Synthesizer};
}
