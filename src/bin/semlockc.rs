//! `semlockc` — the semantic-locking compiler driver.
//!
//! Reads a program of atomic sections in the surface language (see
//! `synth::parse`), synthesizes deadlock-free semantic locking for it,
//! and prints the instrumented sections plus the generated locking
//! modes.
//!
//! ```text
//! semlockc program.sl                # compile and print
//! semlockc --no-opt program.sl      # skip Appendix-A optimizations
//! semlockc --no-refine program.sl   # generic lock(+) sites (§3 only)
//! semlockc --phi 16 program.sl      # abstract-value count (default 64)
//! semlockc -                        # read from stdin
//! ```
//!
//! Supported ADT classes: Map, Set, Queue, Multimap, WeakMap (and any
//! number of instances of each).

use std::io::Read;
use std::process::ExitCode;
use synth::restrictions::RestrictionsGraph;
use synth::{ClassRegistry, Synthesizer};

fn usage() -> ExitCode {
    eprintln!("usage: semlockc [--no-opt] [--no-refine] [--phi N] <program.sl | ->");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut no_opt = false;
    let mut no_refine = false;
    let mut phi_n: u16 = 64;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--no-opt" => no_opt = true,
            "--no-refine" => no_refine = true,
            "--phi" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => phi_n = n,
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if path.is_none() => path = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };

    let src = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("semlockc: failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("semlockc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let sections = match synth::parse::parse_program(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("semlockc: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Register every known ADT class; report unknown ones up front.
    let known = ["Map", "Set", "Queue", "Multimap", "WeakMap"];
    let mut registry = ClassRegistry::new();
    for class in known {
        registry.register(class, adts::schema_of(class), adts::spec_of(class));
    }
    for section in &sections {
        for (var, class) in section.pointer_vars() {
            if !registry.contains(class) {
                eprintln!(
                    "semlockc: section {}: variable {var} has unknown ADT class {class} \
                     (supported: {})",
                    section.name,
                    known.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // Diagnostics: restrictions-graph of the input.
    let graph = RestrictionsGraph::build(&sections);
    println!("// restrictions-graph:");
    let classes = graph.classes();
    if graph.edge_count() == 0 {
        println!("//   (no ordering constraints)");
    }
    for u in 0..classes.len() {
        for v in graph.succ(u) {
            println!("//   [{}] -> [{}]", classes.name(u), classes.name(v));
        }
    }
    for comp in graph.cyclic_components() {
        let names: Vec<&str> = comp.iter().map(|&c| classes.name(c)).collect();
        println!(
            "//   cyclic component {{{}}} -> global wrapper",
            names.join(", ")
        );
    }

    let mut synth = Synthesizer::new(registry).phi(semlock::phi::Phi::fib(phi_n));
    if no_opt {
        synth = synth.without_optimizations();
    }
    if no_refine {
        synth = synth.without_refinement();
    }
    let out = synth.synthesize(&sections);

    println!("// lock order: {}", out.class_order.join(" < "));
    for w in &out.wrappers {
        println!(
            "// wrapper {} (pointer {}) wraps {}",
            w.name,
            w.pointer,
            w.wrapped_classes.join(", ")
        );
    }
    println!();
    for section in &out.sections {
        print!("{section}");
        println!();
    }

    println!("// locking modes:");
    let mut classes: Vec<&str> = out.tables.classes().collect();
    classes.sort();
    for class in classes {
        let t = out.tables.table(class);
        println!(
            "//   {class}: {} modes, {} partitions (φ n = {})",
            t.mode_count(),
            t.partition_count(),
            t.phi().n()
        );
    }
    ExitCode::SUCCESS
}
