//! `semlockc` — the semantic-locking compiler driver.
//!
//! Reads a program of atomic sections in the surface language (see
//! `synth::parse`), synthesizes deadlock-free semantic locking for it,
//! and prints the instrumented sections plus the generated locking
//! modes. With `check`, instead runs the static OS2PL audit
//! (`synth::audit`) and the tape lints (`synth::tape_audit`) over the
//! synthesized program and reports SL001–SL008 findings.
//!
//! ```text
//! semlockc program.sl                # compile and print
//! semlockc --no-opt program.sl      # skip Appendix-A optimizations
//! semlockc --no-refine program.sl   # generic lock(+) sites (§3 only)
//! semlockc --phi 16 program.sl      # abstract-value count (default 64)
//! semlockc -                        # read from stdin
//! semlockc check a.sl b.sl          # audit synthesized output
//! semlockc check --json a.sl       # machine-readable findings
//! semlockc check --dump-tape a.sl  # pre-/post-optimizer op tapes
//! ```
//!
//! Check-mode exit codes: 0 — audit clean (warnings allowed); 1 — lint
//! errors found; 2 — usage, I/O, or parse errors.
//!
//! `--json` emits the `semlock-audit/v2` schema: a top-level object with
//! a `schema` tag, the per-file reports under `files`, and the runtime's
//! machine-checked memory-ordering audit table (`semlock::mech::
//! ORDERING_AUDIT`, the contract the `model` crate verifies) under
//! `ordering_audit`. v1 was a bare array of the per-file objects; the
//! per-file shape is unchanged.
//!
//! Supported ADT classes: Map, Set, Queue, Multimap, WeakMap (and any
//! number of instances of each).

use std::io::Read;
use std::process::ExitCode;
use synth::diag::Diagnostic;
use synth::restrictions::RestrictionsGraph;
use synth::{ClassRegistry, Synthesizer};

fn usage() -> ExitCode {
    eprintln!("usage: semlockc [--no-opt] [--no-refine] [--phi N] <program.sl | ->");
    eprintln!(
        "       semlockc check [--json] [--dump-tape] [--no-opt] [--no-refine] [--phi N] \
         <program.sl...>"
    );
    ExitCode::from(2)
}

struct Options {
    no_opt: bool,
    no_refine: bool,
    phi_n: u16,
}

impl Options {
    fn synthesizer(&self, registry: ClassRegistry) -> Synthesizer {
        let mut synth = Synthesizer::new(registry).phi(semlock::phi::Phi::fib(self.phi_n));
        if self.no_opt {
            synth = synth.without_optimizations();
        }
        if self.no_refine {
            synth = synth.without_refinement();
        }
        synth
    }
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut check = false;
    let mut json = false;
    let mut dump_tape = false;
    let mut opts = Options {
        no_opt: false,
        no_refine: false,
        phi_n: 64,
    };

    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("check") {
        check = true;
        args.next();
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--json" if check => json = true,
            "--dump-tape" if check => dump_tape = true,
            "--no-opt" => opts.no_opt = true,
            "--no-refine" => opts.no_refine = true,
            "--phi" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => opts.phi_n = n,
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if !other.starts_with('-') || other == "-" => paths.push(other.to_string()),
            _ => return usage(),
        }
    }
    if paths.is_empty() || (!check && paths.len() > 1) {
        return usage();
    }

    if check {
        check_files(&paths, &opts, json, dump_tape)
    } else {
        compile_one(&paths[0], &opts)
    }
}

fn read_source(path: &str) -> Result<String, ExitCode> {
    if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("semlockc: failed to read stdin");
            return Err(ExitCode::from(2));
        }
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("semlockc: cannot read {path}: {e}");
            ExitCode::from(2)
        })
    }
}

fn registry() -> ClassRegistry {
    let mut registry = ClassRegistry::new();
    for class in KNOWN {
        registry.register(class, adts::schema_of(class), adts::spec_of(class));
    }
    registry
}

const KNOWN: [&str; 5] = ["Map", "Set", "Queue", "Multimap", "WeakMap"];

/// Parse a source file and verify all its ADT classes are supported.
fn load_sections(src: &str) -> Result<Vec<synth::ir::AtomicSection>, Box<Diagnostic>> {
    let sections = synth::parse::parse_program(src).map_err(|e| Box::new(Diagnostic::from(e)))?;
    let reg = registry();
    for section in &sections {
        for (var, class) in section.pointer_vars() {
            if !reg.contains(class) {
                return Err(Box::new(
                    Diagnostic::error(format!(
                        "variable {var} has unknown ADT class {class} (supported: {})",
                        KNOWN.join(", ")
                    ))
                    .in_section(&section.name),
                ));
            }
        }
    }
    Ok(sections)
}

/// `semlockc check`: synthesize each file and audit the result.
fn check_files(paths: &[String], opts: &Options, json: bool, dump_tape: bool) -> ExitCode {
    let mut worst = ExitCode::SUCCESS;
    let mut json_entries = Vec::new();
    for path in paths {
        let src = match read_source(path) {
            Ok(s) => s,
            Err(c) => return c,
        };
        let sections = match load_sections(&src) {
            Ok(s) => s,
            Err(d) => {
                if json {
                    json_entries.push(format!(
                        "{{\"file\":\"{}\",\"errors\":1,\"warnings\":0,\"diagnostics\":[{}]}}",
                        synth::diag::json_escape(path),
                        d.render_json()
                    ));
                } else {
                    eprintln!("semlockc: {path}:\n{}", d.render_text());
                }
                worst = ExitCode::from(2);
                continue;
            }
        };
        let (out, report) = opts.synthesizer(registry()).synthesize_and_audit(&sections);
        if dump_tape {
            // Under `--json` the dump goes to stderr so the JSON document
            // on stdout stays parseable.
            dump_tapes(path, &out, json);
        }
        if json {
            let diags: Vec<String> = report.diagnostics.iter().map(|d| d.render_json()).collect();
            json_entries.push(format!(
                "{{\"file\":\"{}\",\"errors\":{},\"warnings\":{},\"diagnostics\":[{}]}}",
                synth::diag::json_escape(path),
                report.error_count(),
                report.warning_count(),
                diags.join(",")
            ));
        } else if report.diagnostics.is_empty() {
            println!("{path}: audit clean");
        } else {
            print!("{path}:\n{}", report.render_text());
        }
        if !report.is_clean() && worst == ExitCode::SUCCESS {
            worst = ExitCode::FAILURE;
        }
    }
    if json {
        println!(
            "{{\"schema\":\"semlock-audit/v2\",\"files\":[{}],\"ordering_audit\":[{}]}}",
            json_entries.join(","),
            ordering_audit_json()
        );
    }
    worst
}

/// `--dump-tape`: for every synthesized section, lower to the raw op
/// tape, run the tape optimizer, and print the two tapes side by side
/// with the per-pass transformation counts (acquisition fusion, batched
/// group admission, loop-invariant hoisting) — the view to reach for
/// when asking *why* an acquisition did or did not fuse, batch, or
/// rotate out of a loop.
fn dump_tapes(path: &str, out: &synth::SynthOutput, to_stderr: bool) {
    use std::fmt::Write as _;
    let mut buf = String::new();
    for section in &out.sections {
        let pre = synth::lower::lower_section(section, &out.tables);
        let (post, stats) = synth::tape_opt::optimize(&pre);
        let _ = writeln!(
            buf,
            "{path}: section {}: {} ops -> {} ops \
             (fused {}, batches {} [{} members], hoisted {})",
            pre.section,
            pre.ops.len(),
            post.ops.len(),
            stats.fused,
            stats.batches,
            stats.batch_members,
            stats.hoisted
        );
        let render = |t: &synth::lower::Tape| -> Vec<String> {
            t.ops
                .iter()
                .enumerate()
                .map(|(pc, op)| format!("{pc:3}: {}", render_op(t, op)))
                .collect()
        };
        let left = render(&pre);
        let right = render(&post);
        let width = left
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max("pre-opt".len());
        let _ = writeln!(buf, "  {:<width$} | {}", "pre-opt", "post-opt");
        for i in 0..left.len().max(right.len()) {
            let l = left.get(i).map(String::as_str).unwrap_or("");
            let r = right.get(i).map(String::as_str).unwrap_or("");
            let _ = writeln!(buf, "  {l:<width$} | {r}");
        }
    }
    if to_stderr {
        eprint!("{buf}");
    } else {
        print!("{buf}");
    }
}

/// One lowered op, compactly: slots as `rN`, jump offsets relative to
/// the next op, lock sites as `site<Class>[key slots]`.
fn render_op(t: &synth::lower::Tape, op: &synth::lower::LowOp) -> String {
    use synth::lower::{LowOp, NO_SLOT};
    let site = |s: u16| {
        let d = &t.sites[s as usize];
        let keys: Vec<String> = d.key_slots.iter().map(|k| format!("r{k}")).collect();
        format!("site{s}<{}>[{}]", d.class, keys.join(","))
    };
    let group = |start: u32, len: u16| {
        let entries: Vec<String> = t.group_pool[start as usize..start as usize + len as usize]
            .iter()
            .map(|&(recv, s)| format!("r{recv} {}", site(s)))
            .collect();
        entries.join("; ")
    };
    match op {
        LowOp::Const { dst, val } => format!("r{dst} = const {val:?}"),
        LowOp::Copy { dst, src } => format!("r{dst} = r{src}"),
        LowOp::IsNull { dst, src } => format!("r{dst} = is_null r{src}"),
        LowOp::Not { dst, src } => format!("r{dst} = not r{src}"),
        LowOp::Eq { dst, a, b } => format!("r{dst} = r{a} == r{b}"),
        LowOp::Lt { dst, a, b } => format!("r{dst} = r{a} < r{b}"),
        LowOp::Add { dst, a, b } => format!("r{dst} = r{a} + r{b}"),
        LowOp::New { dst, class } => format!("r{dst} = new {}", t.classes[*class as usize]),
        LowOp::Call {
            call,
            ret,
            recv,
            args_start,
            args_len,
        } => {
            let c = &t.calls[*call as usize];
            let args: Vec<String> = t.arg_pool
                [*args_start as usize..*args_start as usize + *args_len as usize]
                .iter()
                .map(|s| format!("r{s}"))
                .collect();
            let dst = if *ret == NO_SLOT {
                String::new()
            } else {
                format!("r{ret} = ")
            };
            format!("{dst}r{recv}.{}({})", c.method, args.join(", "))
        }
        LowOp::Jump { off } => format!("jump {off:+}"),
        LowOp::JumpIfFalse { cond, off } => format!("jump_if_false r{cond} {off:+}"),
        LowOp::Lock { recv, site: s } => format!("lock r{recv} {}", site(*s)),
        LowOp::LockGroup { start, len } => format!("lock_group [{}]", group(*start, *len)),
        LowOp::UnlockAllOf { recv } => format!("unlock_all_of r{recv}"),
        LowOp::UnlockAll => "unlock_all".to_string(),
        LowOp::AcquireBatch { start, len } => format!("acquire_batch [{}]", group(*start, *len)),
    }
}

/// The runtime's `ORDERING_AUDIT` table as JSON objects: one per audited
/// atomic-access site of the admission protocol, with the shipped
/// ordering, the seeded mutant the model checker must refute (or null),
/// and the safety claim.
fn ordering_audit_json() -> String {
    use semlock::mech::{ordering_name, ORDERING_AUDIT};
    let entries: Vec<String> = ORDERING_AUDIT
        .iter()
        .map(|e| {
            format!(
                "{{\"site\":\"{}\",\"ordering\":\"{}\",\"mutant\":{},\"claim\":\"{}\"}}",
                synth::diag::json_escape(e.site),
                ordering_name(e.ordering),
                match e.mutant {
                    Some(m) => format!("\"{}\"", ordering_name(m)),
                    None => "null".to_string(),
                },
                synth::diag::json_escape(e.claim)
            )
        })
        .collect();
    entries.join(",")
}

/// Classic compile-and-print mode.
fn compile_one(path: &str, opts: &Options) -> ExitCode {
    let src = match read_source(path) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let sections = match load_sections(&src) {
        Ok(s) => s,
        Err(d) => {
            eprintln!("semlockc: {path}:\n{}", d.render_text());
            return ExitCode::from(2);
        }
    };

    // Diagnostics: restrictions-graph of the input.
    let graph = RestrictionsGraph::build(&sections);
    println!("// restrictions-graph:");
    let classes = graph.classes();
    if graph.edge_count() == 0 {
        println!("//   (no ordering constraints)");
    }
    for u in 0..classes.len() {
        for v in graph.succ(u) {
            println!("//   [{}] -> [{}]", classes.name(u), classes.name(v));
        }
    }
    for comp in graph.cyclic_components() {
        let names: Vec<&str> = comp.iter().map(|&c| classes.name(c)).collect();
        println!(
            "//   cyclic component {{{}}} -> global wrapper",
            names.join(", ")
        );
    }

    let out = opts.synthesizer(registry()).synthesize(&sections);

    println!("// lock order: {}", out.class_order.join(" < "));
    for w in &out.wrappers {
        println!(
            "// wrapper {} (pointer {}) wraps {}",
            w.name,
            w.pointer,
            w.wrapped_classes.join(", ")
        );
    }
    println!();
    for section in &out.sections {
        print!("{section}");
        println!();
    }

    println!("// locking modes:");
    let mut classes: Vec<&str> = out.tables.classes().collect();
    classes.sort();
    for class in classes {
        let t = out.tables.table(class);
        println!(
            "//   {class}: {} modes, {} partitions (φ n = {})",
            t.mode_count(),
            t.partition_count(),
            t.phi().n()
        );
    }
    ExitCode::SUCCESS
}
